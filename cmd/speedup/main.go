// Command speedup measures the k-walk speed-up sweep S^k(G) on a chosen
// graph family and classifies its regime (linear / logarithmic /
// superlinear), reproducing the per-family behaviour behind Table 1 and
// Theorems 6–8.
//
// Usage:
//
//	speedup -graph cycle -n 512 -kmax 64 [-kernel lazy:0.5] [-trials N] [-seed S] [-start V]
//
// Graphs: cycle, path, complete, torus2d, grid3d, hypercube, tree, barbell,
// lollipop, expander, chords, er, regular. For barbell the default start is
// the center vertex.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"manywalks"
	"manywalks/internal/kernelflag"
)

// errUsage marks bad invocations (flags, graph/kernel spellings), which
// exit 2; estimation failures exit 1, preserving the pre-refactor exit
// code contract.
var errUsage = errors.New("usage error")

func usage(err error) error { return fmt.Errorf("%w: %w", errUsage, err) }

func buildGraph(kind string, n int, r *manywalks.Rand) (*manywalks.Graph, int32, error) {
	switch kind {
	case "cycle":
		return manywalks.NewCycle(n), 0, nil
	case "path":
		return manywalks.NewPath(n), 0, nil
	case "complete":
		return manywalks.NewComplete(n, false), 0, nil
	case "torus2d":
		side := int(math.Round(math.Sqrt(float64(n))))
		return manywalks.NewTorus2D(side), 0, nil
	case "grid3d":
		side := int(math.Round(math.Cbrt(float64(n))))
		return manywalks.NewGrid([]int{side, side, side}, true), 0, nil
	case "hypercube":
		dim := int(math.Round(math.Log2(float64(n))))
		return manywalks.NewHypercube(dim), 0, nil
	case "tree":
		height := int(math.Round(math.Log2(float64(n+1)))) - 1
		if height < 1 {
			height = 1
		}
		return manywalks.NewBalancedTree(2, height), 0, nil
	case "barbell":
		if n%2 == 0 {
			n++
		}
		g, center := manywalks.NewBarbell(n)
		return g, center, nil
	case "lollipop":
		return manywalks.NewLollipop(n/2, n-n/2), 0, nil
	case "expander":
		m := int(math.Round(math.Sqrt(float64(n))))
		return manywalks.NewMargulisExpander(m), 0, nil
	case "chords":
		for !isPrime(n) {
			n++
		}
		return manywalks.NewCycleWithChords(n), 0, nil
	case "er":
		p := 3 * math.Log(float64(n)) / float64(n)
		g, err := manywalks.NewConnectedErdosRenyi(n, p, r, 50)
		return g, 0, err
	case "regular":
		g, err := manywalks.NewConnectedRandomRegular(n, 4, r, 200)
		return g, 0, err
	default:
		return nil, 0, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func isPrime(p int) bool {
	if p < 2 {
		return false
	}
	for f := 2; f*f <= p; f++ {
		if p%f == 0 {
			return false
		}
	}
	return true
}

// run executes the command against args, writing the sweep to out; main is
// a thin exit-code shim so tests can drive the whole flag-to-report path
// in process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("speedup", flag.ContinueOnError)
	fs.SetOutput(out)
	kind := fs.String("graph", "cycle", "graph family")
	n := fs.Int("n", 256, "approximate vertex count")
	kmax := fs.Int("kmax", 64, "largest k in the doubling sweep")
	kernelFlag := fs.String("kernel", "uniform", kernelflag.Usage())
	trials := fs.Int("trials", 300, "Monte Carlo trials per estimate")
	seed := fs.Uint64("seed", 20080614, "root RNG seed")
	startFlag := fs.Int("start", -1, "start vertex (-1 = family default)")
	workers := fs.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usage(err)
	}

	kernel, err := kernelflag.Resolve(*kernelFlag, out)
	if err != nil {
		if errors.Is(err, kernelflag.ErrHelp) {
			return nil
		}
		return usage(err)
	}
	r := manywalks.NewRand(*seed)
	g, start, err := buildGraph(*kind, *n, r)
	if err != nil {
		return usage(err)
	}
	if *startFlag >= 0 {
		start = int32(*startFlag)
	}
	var ks []int
	for k := 2; k <= *kmax; k *= 2 {
		ks = append(ks, k)
	}
	if len(ks) < 3 {
		ks = []int{2, 3, 4}
	}
	opts := manywalks.MCOptions{
		Trials:   *trials,
		Workers:  *workers,
		Seed:     *seed,
		MaxSteps: 100 * int64(g.N()) * int64(g.N()),
	}
	points, err := manywalks.KernelSpeedupSweep(g, kernel, start, ks, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s  n=%d m=%d start=%d kernel=%s  C=%s\n",
		g.Name(), g.N(), g.M(), start, kernel, points[0].Single.Summary)
	fmt.Fprintf(out, "%-6s %-26s %-10s %-8s\n", "k", "C^k", "S^k", "S^k/k")
	for _, p := range points {
		fmt.Fprintf(out, "%-6d %-26s %-10.2f %-8.2f\n", p.K, p.Multi.Summary, p.Speedup, p.PerWalker)
	}
	cls, err := manywalks.ClassifySpeedups(points)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "regime: %s (power slope %.2f, log-fit R² %.3f)\n",
		cls.Regime, cls.PowerSlope, cls.LogFit.R2)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}
