package main

import (
	"strings"
	"testing"

	"manywalks"
)

// TestRunTinySweep drives the whole flag-to-sweep path on a tiny graph.
func TestRunTinySweep(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-graph", "complete", "-n", "12", "-kmax", "8", "-trials", "10", "-seed", "5"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"complete(12)", "S^k", "regime:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFlagAndInputErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil || !strings.Contains(out.String(), "-graph") {
		t.Fatalf("-h must print usage and succeed, got %v", err)
	}
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-graph", "moebius"}, &out); err == nil || !strings.Contains(err.Error(), "unknown graph") {
		t.Fatalf("bad graph kind: %v", err)
	}
}

func TestBuildGraphFamilies(t *testing.T) {
	r := manywalks.NewRand(1)
	for _, kind := range []string{"cycle", "path", "complete", "torus2d", "grid3d", "hypercube",
		"tree", "barbell", "lollipop", "expander", "chords", "er", "regular"} {
		g, start, err := buildGraph(kind, 32, r)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.N() < 2 || int(start) >= g.N() {
			t.Fatalf("%s: degenerate graph n=%d start=%d", kind, g.N(), start)
		}
	}
}
