package main

import (
	"strings"
	"testing"
)

// TestRunTinyGraph drives the whole flag-to-report path on a tiny graph.
func TestRunTinyGraph(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-graph", "cycle", "-n", "16", "-k", "2", "-trials", "8", "-seed", "7"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"cycle(16)", "C     =", "C^2", "S^2", "Matthews sandwich"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFlagAndInputErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil || !strings.Contains(out.String(), "-graph") {
		t.Fatalf("-h must print usage and succeed, got %v", err)
	}
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-graph", "klein-bottle"}, &out); err == nil || !strings.Contains(err.Error(), "unknown graph") {
		t.Fatalf("bad graph kind: %v", err)
	}
	if err := run([]string{"-kernel", "teleport"}, &out); err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Fatalf("bad kernel: %v", err)
	}
}
