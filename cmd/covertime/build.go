package main

import (
	"fmt"
	"math"

	"manywalks"
)

// buildGraph mirrors cmd/speedup's family table; kept local so each binary
// stays self-contained.
func buildGraph(kind string, n int, r *manywalks.Rand) (*manywalks.Graph, int32, error) {
	switch kind {
	case "cycle":
		return manywalks.NewCycle(n), 0, nil
	case "path":
		return manywalks.NewPath(n), 0, nil
	case "complete":
		return manywalks.NewComplete(n, false), 0, nil
	case "torus2d":
		side := int(math.Round(math.Sqrt(float64(n))))
		return manywalks.NewTorus2D(side), 0, nil
	case "grid3d":
		side := int(math.Round(math.Cbrt(float64(n))))
		return manywalks.NewGrid([]int{side, side, side}, true), 0, nil
	case "hypercube":
		dim := int(math.Round(math.Log2(float64(n))))
		return manywalks.NewHypercube(dim), 0, nil
	case "tree":
		height := int(math.Round(math.Log2(float64(n+1)))) - 1
		if height < 1 {
			height = 1
		}
		return manywalks.NewBalancedTree(2, height), 0, nil
	case "barbell":
		if n%2 == 0 {
			n++
		}
		g, center := manywalks.NewBarbell(n)
		return g, center, nil
	case "lollipop":
		return manywalks.NewLollipop(n/2, n-n/2), 0, nil
	case "expander":
		m := int(math.Round(math.Sqrt(float64(n))))
		return manywalks.NewMargulisExpander(m), 0, nil
	case "er":
		p := 3 * math.Log(float64(n)) / float64(n)
		g, err := manywalks.NewConnectedErdosRenyi(n, p, r, 50)
		return g, 0, err
	case "regular":
		g, err := manywalks.NewConnectedRandomRegular(n, 4, r, 200)
		return g, 0, err
	default:
		return nil, 0, fmt.Errorf("unknown graph kind %q", kind)
	}
}
