// Command covertime estimates single-walk and k-walk cover times for one
// graph, alongside the exact Matthews sandwich and Baby Matthews (Theorem
// 13) reference bounds when the graph is small enough for exact analysis.
//
// Usage:
//
//	covertime -graph torus2d -n 1024 -k 8 [-kernel lazy:0.5] [-trials N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"manywalks"
)

func main() {
	kind := flag.String("graph", "torus2d", "graph family (see cmd/speedup for the list)")
	n := flag.Int("n", 256, "approximate vertex count")
	k := flag.Int("k", 4, "number of parallel walks")
	kernelFlag := flag.String("kernel", "uniform", "walk kernel: uniform, lazy[:α], weighted, nobacktrack, metropolis")
	trials := flag.Int("trials", 400, "Monte Carlo trials")
	seed := flag.Uint64("seed", 20080614, "root RNG seed")
	workers := flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
	flag.Parse()

	kernel, err := manywalks.ParseKernel(*kernelFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := manywalks.NewRand(*seed)
	g, start, err := buildGraph(*kind, *n, r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := manywalks.MCOptions{
		Trials:   *trials,
		Workers:  *workers,
		Seed:     *seed,
		MaxSteps: 100 * int64(g.N()) * int64(g.N()),
	}
	single, err := manywalks.KernelCoverTime(g, kernel, start, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	multi, err := manywalks.KernelKCoverTime(g, kernel, start, *k, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s  n=%d m=%d start=%d kernel=%s\n", g.Name(), g.N(), g.M(), start, kernel)
	fmt.Printf("C     = %s   (truncated trials: %d)\n", single.Summary, single.Truncated)
	fmt.Printf("C^%-3d = %s   (truncated trials: %d)\n", *k, multi.Summary, multi.Truncated)
	fmt.Printf("S^%-3d = %.2f  (per walker %.2f)\n",
		*k, single.Mean()/multi.Mean(), single.Mean()/multi.Mean()/float64(*k))

	// The exact bounds below are uniform-walk quantities; skip them when a
	// different kernel was simulated.
	if g.N() <= 2048 && kernel == manywalks.UniformKernel() {
		b, err := manywalks.ComputeBounds(g, 0, r)
		if err == nil {
			fmt.Printf("hmax = %.4g  hmin = %.4g\n", b.Hmax, b.Hmin)
			fmt.Printf("Matthews sandwich: [%.4g, %.4g]\n", b.MatthewsLower, b.MatthewsUpper)
			fmt.Printf("Baby Matthews (Thm 13) bound at k=%d: %.4g\n", *k, b.BabyMatthewsBound(*k))
			fmt.Printf("gap g(n) = C/hmax ≈ %.2f\n", b.GapOf(single.Mean()))
		}
	}
}
