// Command covertime estimates single-walk and k-walk cover times for one
// graph, alongside the exact Matthews sandwich and Baby Matthews (Theorem
// 13) reference bounds when the graph is small enough for exact analysis.
//
// Usage:
//
//	covertime -graph torus2d -n 1024 -k 8 [-kernel lazy:0.5] [-trials N] [-seed S]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"manywalks"
	"manywalks/internal/kernelflag"
)

// errUsage marks bad invocations (flags, graph/kernel spellings), which
// exit 2; estimation failures exit 1, preserving the pre-refactor exit
// code contract.
var errUsage = errors.New("usage error")

func usage(err error) error { return fmt.Errorf("%w: %w", errUsage, err) }

// run executes the command against args, writing the report to out; main
// is a thin exit-code shim so tests can drive the whole flag-to-report
// path in process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("covertime", flag.ContinueOnError)
	fs.SetOutput(out)
	kind := fs.String("graph", "torus2d", "graph family (see cmd/speedup for the list)")
	n := fs.Int("n", 256, "approximate vertex count")
	k := fs.Int("k", 4, "number of parallel walks")
	kernelFlag := fs.String("kernel", "uniform", kernelflag.Usage())
	trials := fs.Int("trials", 400, "Monte Carlo trials")
	seed := fs.Uint64("seed", 20080614, "root RNG seed")
	workers := fs.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usage(err)
	}

	kernel, err := kernelflag.Resolve(*kernelFlag, out)
	if err != nil {
		if errors.Is(err, kernelflag.ErrHelp) {
			return nil
		}
		return usage(err)
	}
	r := manywalks.NewRand(*seed)
	g, start, err := buildGraph(*kind, *n, r)
	if err != nil {
		return usage(err)
	}
	opts := manywalks.MCOptions{
		Trials:   *trials,
		Workers:  *workers,
		Seed:     *seed,
		MaxSteps: 100 * int64(g.N()) * int64(g.N()),
	}
	single, err := manywalks.KernelCoverTime(g, kernel, start, opts)
	if err != nil {
		return err
	}
	multi, err := manywalks.KernelKCoverTime(g, kernel, start, *k, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s  n=%d m=%d start=%d kernel=%s\n", g.Name(), g.N(), g.M(), start, kernel)
	fmt.Fprintf(out, "C     = %s   (truncated trials: %d)\n", single.Summary, single.Truncated)
	fmt.Fprintf(out, "C^%-3d = %s   (truncated trials: %d)\n", *k, multi.Summary, multi.Truncated)
	fmt.Fprintf(out, "S^%-3d = %.2f  (per walker %.2f)\n",
		*k, single.Mean()/multi.Mean(), single.Mean()/multi.Mean()/float64(*k))

	// The exact bounds below are uniform-walk quantities; skip them when a
	// different kernel was simulated.
	if g.N() <= 2048 && kernel == manywalks.UniformKernel() {
		b, err := manywalks.ComputeBounds(g, 0, r)
		if err == nil {
			fmt.Fprintf(out, "hmax = %.4g  hmin = %.4g\n", b.Hmax, b.Hmin)
			fmt.Fprintf(out, "Matthews sandwich: [%.4g, %.4g]\n", b.MatthewsLower, b.MatthewsUpper)
			fmt.Fprintf(out, "Baby Matthews (Thm 13) bound at k=%d: %.4g\n", *k, b.BabyMatthewsBound(*k))
			fmt.Fprintf(out, "gap g(n) = C/hmax ≈ %.2f\n", b.GapOf(single.Mean()))
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}
