// Command graphinfo prints structural and spectral statistics for a graph —
// the quantities a user needs before choosing k-walk parameters — and can
// export the instance in edge-list, binary, or DOT form.
//
// Usage:
//
//	graphinfo -graph expander -n 256 [-export edgelist|binary|dot] [-o file]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"manywalks"
)

func buildGraph(kind string, n int, r *manywalks.Rand) (*manywalks.Graph, error) {
	switch kind {
	case "cycle":
		return manywalks.NewCycle(n), nil
	case "path":
		return manywalks.NewPath(n), nil
	case "complete":
		return manywalks.NewComplete(n, false), nil
	case "star":
		return manywalks.NewStar(n), nil
	case "wheel":
		return manywalks.NewWheel(n), nil
	case "torus2d":
		side := int(math.Round(math.Sqrt(float64(n))))
		return manywalks.NewTorus2D(side), nil
	case "hypercube":
		return manywalks.NewHypercube(int(math.Round(math.Log2(float64(n))))), nil
	case "tree":
		h := int(math.Round(math.Log2(float64(n+1)))) - 1
		if h < 1 {
			h = 1
		}
		return manywalks.NewBalancedTree(2, h), nil
	case "barbell":
		if n%2 == 0 {
			n++
		}
		g, _ := manywalks.NewBarbell(n)
		return g, nil
	case "lollipop":
		return manywalks.NewLollipop(n/2, n-n/2), nil
	case "expander":
		return manywalks.NewMargulisExpander(int(math.Round(math.Sqrt(float64(n))))), nil
	case "er":
		p := 3 * math.Log(float64(n)) / float64(n)
		return manywalks.NewConnectedErdosRenyi(n, p, r, 50)
	case "regular":
		return manywalks.NewConnectedRandomRegular(n, 4, r, 200)
	case "rgg":
		radius := 2 * math.Sqrt(math.Log(float64(n))/(math.Pi*float64(n)))
		return manywalks.NewRandomGeometric(n, radius, r), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func main() {
	kind := flag.String("graph", "torus2d", "graph family")
	n := flag.Int("n", 256, "approximate vertex count")
	seed := flag.Uint64("seed", 20080614, "RNG seed")
	export := flag.String("export", "", "export format: edgelist, binary, or dot")
	out := flag.String("o", "", "export destination (default stdout)")
	flag.Parse()

	r := manywalks.NewRand(*seed)
	g, err := buildGraph(*kind, *n, r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *export != "" {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		switch *export {
		case "edgelist":
			err = g.WriteEdgeList(w)
		case "binary":
			err = g.WriteBinary(w)
		case "dot":
			err = g.WriteDOT(w)
		default:
			err = fmt.Errorf("unknown export format %q", *export)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	min, max := g.DegreeStats()
	fmt.Printf("name          %s\n", g.Name())
	fmt.Printf("vertices      %d\n", g.N())
	fmt.Printf("edges         %d (self-loops %d)\n", g.M(), g.SelfLoops())
	fmt.Printf("degree        min %d, max %d\n", min, max)
	fmt.Printf("connected     %v\n", g.IsConnected())
	fmt.Printf("bipartite     %v\n", g.IsBipartite())
	if g.N() <= 4096 && g.IsConnected() {
		fmt.Printf("diameter      %d\n", g.Diameter())
		stay := 0.0
		if g.IsBipartite() {
			stay = 0.5
			fmt.Printf("walk          lazy (bipartite graph: simple walk is periodic)\n")
		}
		gap := manywalks.SpectralGap(g, stay, r)
		fmt.Printf("spectral gap  %.5f (λ = %.5f)\n", gap, 1-gap)
		if tm := manywalks.MixingTime(g, stay, nil, 40*g.N()*g.N()); tm >= 0 {
			fmt.Printf("mixing time   %d (paper definition, worst start)\n", tm)
		}
	}
	if g.N() <= 2048 && g.IsConnected() {
		bounds, err := manywalks.ComputeBounds(g, 0, r)
		if err == nil {
			fmt.Printf("hmax / hmin   %.4g / %.4g\n", bounds.Hmax, bounds.Hmin)
			fmt.Printf("Matthews      C ∈ [%.4g, %.4g]\n", bounds.MatthewsLower, bounds.MatthewsUpper)
		}
	}
}
