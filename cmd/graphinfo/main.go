// Command graphinfo prints structural and spectral statistics for a graph —
// the quantities a user needs before choosing k-walk parameters, plus the
// CSR memory footprint, degree histogram, and engine-mode prediction that
// matter at corpus scale — and can export the instance in edge-list,
// binary, or DOT form.
//
// Usage:
//
//	graphinfo -graph expander -n 256 [-export edgelist|binary|dot] [-o file]
//	graphinfo -i graph.mwal
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"slices"

	"manywalks"
	"manywalks/internal/kernelflag"
)

var errUsage = errors.New("usage error")

func usage(err error) error { return fmt.Errorf("%w: %w", errUsage, err) }

func buildGraph(kind string, n int, r *manywalks.Rand) (*manywalks.Graph, error) {
	switch kind {
	case "cycle":
		return manywalks.NewCycle(n), nil
	case "path":
		return manywalks.NewPath(n), nil
	case "complete":
		return manywalks.NewComplete(n, false), nil
	case "star":
		return manywalks.NewStar(n), nil
	case "wheel":
		return manywalks.NewWheel(n), nil
	case "torus2d":
		side := int(math.Round(math.Sqrt(float64(n))))
		return manywalks.NewTorus2D(side), nil
	case "hypercube":
		return manywalks.NewHypercube(int(math.Round(math.Log2(float64(n))))), nil
	case "tree":
		h := int(math.Round(math.Log2(float64(n+1)))) - 1
		if h < 1 {
			h = 1
		}
		return manywalks.NewBalancedTree(2, h), nil
	case "barbell":
		if n%2 == 0 {
			n++
		}
		g, _ := manywalks.NewBarbell(n)
		return g, nil
	case "lollipop":
		return manywalks.NewLollipop(n/2, n-n/2), nil
	case "expander":
		return manywalks.NewMargulisExpander(int(math.Round(math.Sqrt(float64(n))))), nil
	case "er":
		p := 3 * math.Log(float64(n)) / float64(n)
		return manywalks.NewConnectedErdosRenyi(n, p, r, 50)
	case "regular":
		return manywalks.NewConnectedRandomRegular(n, 4, r, 200)
	case "rgg":
		radius := 2 * math.Sqrt(math.Log(float64(n))/(math.Pi*float64(n)))
		return manywalks.NewRandomGeometric(n, radius, r), nil
	default:
		// Fall back to the compact spec grammar ("hypercube:20",
		// "margulis:64", ...), so one flag reaches every generator.
		return manywalks.ParseGraphSpec(kind)
	}
}

// fmtBytes renders a byte count in the largest sensible binary unit.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// printMemoryAndDegrees reports the CSR footprint, the degree histogram,
// and whether the engine's padded fast-path table applies — the facts
// that predict stepping mode and resident size before a run.
func printMemoryAndDegrees(out io.Writer, g *manywalks.Graph) {
	offsets, adj := g.CSR()
	offB := int64(len(offsets)) * 4
	adjB := int64(len(adj)) * 4
	csr := offB + adjB
	detail := fmt.Sprintf("offsets %s + adjacency %s", fmtBytes(offB), fmtBytes(adjB))
	if g.Weighted() {
		wB := int64(len(adj)) * 8
		csr += wB
		detail += fmt.Sprintf(" + weights %s", fmtBytes(wB))
	}
	resident := ""
	if g.Mapped() {
		resident = ", mmapped read-only"
	}
	fmt.Fprintf(out, "csr memory    %s (%s%s)\n", fmtBytes(csr), detail, resident)

	degs := make([]int32, g.N())
	for v := range degs {
		degs[v] = offsets[v+1] - offsets[v]
	}
	slices.Sort(degs)
	quantile := func(q float64) int32 {
		i := int(q * float64(len(degs)-1))
		return degs[i]
	}
	fmt.Fprintf(out, "degree        min %d, median %d, p99 %d, max %d\n",
		degs[0], quantile(0.5), quantile(0.99), degs[len(degs)-1])

	plan := manywalks.PlanPadTable(g)
	if plan.Applies {
		fmt.Fprintf(out, "pad table     applies: %d entries (stride 2^%d) <= limit %d -> single-load uniform sampling\n",
			plan.Entries, plan.Shift, plan.Limit)
	} else {
		fmt.Fprintf(out, "pad table     not built: %d entries (stride 2^%d) > limit %d -> CSR stepping\n",
			plan.Entries, plan.Shift, plan.Limit)
	}
}

// printKernelPlan reports what compiling kern on g would build — the
// capacity check to run before pointing a walkd fleet at a dense kernel. A
// rejected compile (e.g. a row bank over the memory cap) is itself the
// answer, so it prints rather than failing the command.
func printKernelPlan(out io.Writer, g *manywalks.Graph, kern manywalks.Kernel) {
	plan, err := manywalks.PlanKernelTable(g, kern)
	if err != nil {
		fmt.Fprintf(out, "kernel plan   %s: compile rejected: %v\n", kern, err)
		return
	}
	switch {
	case plan.Rows == 0:
		fmt.Fprintf(out, "kernel plan   %s: table-free fast path (no alias table compiled)\n", plan.Kernel)
	case plan.Dense:
		fmt.Fprintf(out, "kernel plan   %s: dense row bank, %d rows x %d columns = %s (cap %s)\n",
			plan.Kernel, plan.Rows, plan.Columns, fmtBytes(plan.Bytes), fmtBytes(plan.Cap))
	default:
		fmt.Fprintf(out, "kernel plan   %s: sparse alias table, %d rows, %d columns = %s\n",
			plan.Kernel, plan.Rows, plan.Columns, fmtBytes(plan.Bytes))
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphinfo", flag.ContinueOnError)
	fs.SetOutput(out)
	input := fs.String("i", "", "input graph file (binary or edge list); overrides -graph")
	kind := fs.String("graph", "torus2d", "graph family or kind:params spec")
	n := fs.Int("n", 256, "approximate vertex count (family flags only)")
	seed := fs.Uint64("seed", 20080614, "RNG seed")
	kernelSpec := fs.String("kernel", "", "also plan this kernel's compiled tables on the graph (\"help\" lists kernels)")
	export := fs.String("export", "", "export format: edgelist, binary, or dot")
	outPath := fs.String("o", "", "export destination (default stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usage(err)
	}

	r := manywalks.NewRand(*seed)
	var g *manywalks.Graph
	var err error
	if *input != "" {
		g, err = manywalks.OpenGraph(*input)
	} else {
		g, err = buildGraph(*kind, *n, r)
	}
	if err != nil {
		return usage(err)
	}

	if *export != "" {
		w := out
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		switch *export {
		case "edgelist":
			err = g.WriteEdgeList(w)
		case "binary":
			err = g.WriteBinary(w)
		case "dot":
			err = g.WriteDOT(w)
		default:
			err = usage(fmt.Errorf("unknown export format %q", *export))
		}
		return err
	}

	fmt.Fprintf(out, "name          %s\n", g.Name())
	fmt.Fprintf(out, "vertices      %d\n", g.N())
	fmt.Fprintf(out, "edges         %d (self-loops %d)\n", g.M(), g.SelfLoops())
	printMemoryAndDegrees(out, g)
	if *kernelSpec != "" {
		kern, err := kernelflag.Resolve(*kernelSpec, out)
		if err != nil {
			if errors.Is(err, kernelflag.ErrHelp) {
				return nil
			}
			return usage(err)
		}
		printKernelPlan(out, g, kern)
	}
	fmt.Fprintf(out, "connected     %v\n", g.IsConnected())
	fmt.Fprintf(out, "bipartite     %v\n", g.IsBipartite())
	if g.N() <= 4096 && g.IsConnected() {
		fmt.Fprintf(out, "diameter      %d\n", g.Diameter())
		stay := 0.0
		if g.IsBipartite() {
			stay = 0.5
			fmt.Fprintf(out, "walk          lazy (bipartite graph: simple walk is periodic)\n")
		}
		gap := manywalks.SpectralGap(g, stay, r)
		fmt.Fprintf(out, "spectral gap  %.5f (λ = %.5f)\n", gap, 1-gap)
		if tm := manywalks.MixingTime(g, stay, nil, 40*g.N()*g.N()); tm >= 0 {
			fmt.Fprintf(out, "mixing time   %d (paper definition, worst start)\n", tm)
		}
	}
	if g.N() <= 2048 && g.IsConnected() {
		bounds, err := manywalks.ComputeBounds(g, 0, r)
		if err == nil {
			fmt.Fprintf(out, "hmax / hmin   %.4g / %.4g\n", bounds.Hmax, bounds.Hmin)
			fmt.Fprintf(out, "Matthews      C ∈ [%.4g, %.4g]\n", bounds.MatthewsLower, bounds.MatthewsUpper)
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}
