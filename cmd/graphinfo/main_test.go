package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"manywalks"
)

// TestRunFamilyReport checks the report includes the new memory, degree,
// and pad-table lines alongside the original structural stats.
func TestRunFamilyReport(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-graph", "torus2d", "-n", "64"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"vertices      64",
		"csr memory",
		"degree        min 4, median 4, p99 4, max 4",
		"pad table     applies",
		"spectral gap",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("report missing %q:\n%s", want, got)
		}
	}
}

// TestRunSpecAndPadCap: a spec-grammar graph over the pad cap reports CSR
// stepping.
func TestRunSpecAndPadCap(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-graph", "hypercube:17"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "vertices      131072") || !strings.Contains(got, "pad table     not built") {
		t.Fatalf("spec graph over the cap must report CSR stepping:\n%s", got)
	}
}

// TestRunInputFile reports on a binary graph file loaded through -i.
func TestRunInputFile(t *testing.T) {
	g := manywalks.NewMargulisExpander(6)
	path := filepath.Join(t.TempDir(), "g.mwal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-i", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "vertices      36") || !strings.Contains(got, "mmapped read-only") {
		t.Fatalf("file-loaded report wrong:\n%s", got)
	}
}

// TestRunExportRoundTrip exports an edge list and reloads it through -i.
func TestRunExportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	var out strings.Builder
	if err := run([]string{"-graph", "cycle:12", "-export", "edgelist", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-i", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "vertices      12") {
		t.Fatalf("round-tripped report wrong:\n%s", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out strings.Builder
	for _, bad := range [][]string{
		{"-graph", "nope"},
		{"-graph", "cycle:12", "-export", "xml"},
		{"-i", filepath.Join(t.TempDir(), "missing.mwal")},
	} {
		if err := run(bad, &out); err == nil {
			t.Fatalf("args %v accepted", bad)
		}
	}
}
