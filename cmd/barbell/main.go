// Command barbell reproduces Figure 1 / Theorem 7: the exponential k-walk
// speed-up on the barbell graph when the walks start at the center vertex.
//
// Usage:
//
//	barbell [-quick] [-trials N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"manywalks/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "use small graph sizes")
	trials := flag.Int("trials", 0, "Monte Carlo trials per estimate (0 = default)")
	seed := flag.Uint64("seed", 0, "root RNG seed (0 = default)")
	flag.Parse()

	cfg := harness.DefaultConfig()
	if *quick {
		cfg = harness.QuickConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	rep, err := harness.RunBarbellFigure(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(rep.Render())
	if !rep.Pass {
		os.Exit(1)
	}
}
