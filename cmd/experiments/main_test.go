package main

import (
	"strings"
	"testing"
)

// TestRunOnlyCollab runs exactly one experiment (the cheapest) end to end
// through the real flag path.
func TestRunOnlyCollab(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-quick", "-trials", "20", "-only", "E-collab"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"E-collab", "E[meet]", "overall: PASS"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "T1:") {
		t.Fatalf("-only E-collab must skip Table 1:\n%s", got)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil || !strings.Contains(out.String(), "-only") {
		t.Fatalf("-h must print usage and succeed, got %v", err)
	}
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-only", "definitely-no-such-id"}, &out); err == nil ||
		!strings.Contains(err.Error(), "no experiment ID matches") {
		t.Fatalf("unmatched -only: %v", err)
	}
}
