// Command experiments runs the complete reproduction suite: Table 1 plus
// every theorem/figure/ablation experiment catalogued in DESIGN.md, printing
// each report and exiting non-zero if any bound or shape check fails.
//
// Usage:
//
//	experiments [-quick] [-trials N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"manywalks/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "use small graph sizes")
	trials := flag.Int("trials", 0, "Monte Carlo trials per estimate (0 = default)")
	seed := flag.Uint64("seed", 0, "root RNG seed (0 = default)")
	workers := flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := harness.DefaultConfig()
	if *quick {
		cfg = harness.QuickConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	start := time.Now()
	allPass := true

	t1, _, err := harness.RunTable1(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	fmt.Println(t1.Render())
	allPass = allPass && t1.Pass

	reports, err := harness.AllExperiments(cfg)
	for _, rep := range reports {
		fmt.Println(rep.Render())
		allPass = allPass && rep.Pass
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("suite finished in %.1fs — overall: ", time.Since(start).Seconds())
	if allPass {
		fmt.Println("PASS")
		return
	}
	fmt.Println("FAIL")
	os.Exit(1)
}
