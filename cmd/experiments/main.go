// Command experiments runs the complete reproduction suite: Table 1 plus
// every theorem/figure/ablation experiment catalogued in DESIGN.md, printing
// each report and exiting non-zero if any bound or shape check fails.
//
// Usage:
//
//	experiments [-quick] [-trials N] [-seed S] [-only substr]
//
// -only restricts the run to experiments whose ID contains the given
// substring (case-insensitive), e.g. -only E-collab or -only thm; Table 1
// runs only when -only is empty or matches "T1".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"manywalks/internal/harness"
)

// errSuiteFailed distinguishes bound/shape failures (exit 1) from usage
// errors (exit 2).
var errSuiteFailed = fmt.Errorf("experiment suite failed")

// run executes the suite against args, writing reports to out; main is a
// thin exit-code shim so tests can drive the flag-to-report path in
// process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	quick := fs.Bool("quick", false, "use small graph sizes")
	trials := fs.Int("trials", 0, "Monte Carlo trials per estimate (0 = default)")
	seed := fs.Uint64("seed", 0, "root RNG seed (0 = default)")
	workers := fs.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
	only := fs.String("only", "", "run only experiments whose ID contains this substring")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}

	cfg := harness.DefaultConfig()
	if *quick {
		cfg = harness.QuickConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	match := func(id string) bool {
		return *only == "" || strings.Contains(strings.ToLower(id), strings.ToLower(*only))
	}
	var selected []harness.Experiment
	for _, ex := range harness.Experiments() {
		if match(ex.ID) {
			selected = append(selected, ex)
		}
	}
	runTable1 := match("T1")
	if !runTable1 && len(selected) == 0 {
		return fmt.Errorf("no experiment ID matches -only %q", *only)
	}

	start := time.Now()
	allPass := true

	if runTable1 {
		t1, _, err := harness.RunTable1(cfg)
		if err != nil {
			return fmt.Errorf("table1: %w", err)
		}
		fmt.Fprintln(out, t1.Render())
		allPass = allPass && t1.Pass
	}

	reports, err := harness.RunExperiments(cfg, selected)
	for _, rep := range reports {
		fmt.Fprintln(out, rep.Render())
		allPass = allPass && rep.Pass
	}
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	fmt.Fprintf(out, "suite finished in %.1fs — overall: ", time.Since(start).Seconds())
	if allPass {
		fmt.Fprintln(out, "PASS")
		return nil
	}
	fmt.Fprintln(out, "FAIL")
	return errSuiteFailed
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if err == errSuiteFailed {
			os.Exit(1)
		}
		os.Exit(2)
	}
}
