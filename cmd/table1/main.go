// Command table1 regenerates the paper's Table 1: for each of the seven
// graph families it measures the cover time, exact maximum hitting time,
// paper-definition mixing time, and the k-walk speed-up sweep with regime
// classification.
//
// Usage:
//
//	table1 [-quick] [-trials N] [-seed S] [-family key]
//
// Without -family all seven rows run. -quick shrinks graph sizes for a fast
// smoke pass (the same configuration the test suite uses).
package main

import (
	"flag"
	"fmt"
	"os"

	"manywalks/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "use small graph sizes")
	trials := flag.Int("trials", 0, "Monte Carlo trials per estimate (0 = default)")
	seed := flag.Uint64("seed", 0, "root RNG seed (0 = default)")
	family := flag.String("family", "", "run a single family (cycle, grid2d, grid3d, hypercube, complete, expander, errandom)")
	flag.Parse()

	cfg := harness.DefaultConfig()
	if *quick {
		cfg = harness.QuickConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	if *family != "" {
		fam, err := harness.FamilyByKey(*family)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		row, err := harness.RunTable1Row(fam, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("family %s: n=%d C=%s hmax=%.4g t_m=%d regime=%s\n",
			fam.Key, row.N, row.Cover.Summary, row.Hmax, row.MixingTime,
			row.Classification.Regime)
		for _, p := range row.Points {
			fmt.Printf("  k=%-4d C^k=%-24s S^k=%-8.2f S^k/k=%.2f\n",
				p.K, p.Multi.Summary, p.Speedup, p.PerWalker)
		}
		return
	}

	rep, _, err := harness.RunTable1(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(rep.Render())
	if !rep.Pass {
		os.Exit(1)
	}
}
