// Command corpusgen generates a random-walk corpus: walksPerVertex
// truncated walks of a fixed length from every vertex of a graph, the
// DeepWalk/node2vec ingestion workload. Walks run as trial lanes through
// the grouped engine — thousands of lanes per pass, sharded across
// workers — and stream out in deterministic vertex order, so the corpus
// never resides in memory and the bytes are identical for every Workers
// and batch setting.
//
// Usage:
//
//	corpusgen -graph hypercube:20 -walks 10 -length 80 -o corpus.txt
//	corpusgen -i graph.mwal -format binary -kernel nobacktrack -o corpus.bin
//
// With no -o the corpus goes to stdout and the report to stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"manywalks/internal/graph"
	"manywalks/internal/kernelflag"
	"manywalks/internal/walk"
)

var errUsage = errors.New("usage error")

func usage(err error) error { return fmt.Errorf("%w: %w", errUsage, err) }

// countingWriter tracks bytes written so the report can state the corpus
// size without re-statting the destination.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// loadGraph resolves the input flags: an explicit file wins over a
// generator spec.
func loadGraph(input, spec string) (*graph.Graph, error) {
	if input != "" {
		return graph.Open(input)
	}
	return graph.ParseSpec(spec)
}

func parseFormat(s string) (walk.CorpusFormat, error) {
	switch s {
	case "text", "txt":
		return walk.CorpusText, nil
	case "binary", "bin":
		return walk.CorpusBinary, nil
	}
	return 0, fmt.Errorf("unknown corpus format %q (want text or binary)", s)
}

// run is the testable body of main: report and progress go to report,
// and the corpus goes to -o (or corpusOut when -o is empty — main wires
// stdout there).
func run(args []string, report, corpusOut io.Writer) error {
	fs := flag.NewFlagSet("corpusgen", flag.ContinueOnError)
	fs.SetOutput(report)
	input := fs.String("i", "", "input graph file (binary or edge list); overrides -graph")
	spec := fs.String("graph", "margulis:32", "generator spec when no input file is given")
	walks := fs.Int("walks", 10, "walks started from every vertex")
	length := fs.Int("length", 80, "steps per walk (a walk records length+1 vertices)")
	kernelFlag := fs.String("kernel", "uniform", kernelflag.Usage())
	workers := fs.Int("workers", 0, "workers per grouped pass (0 = all CPUs)")
	seed := fs.Uint64("seed", 1, "corpus seed; walk t draws from stream t of this seed")
	formatFlag := fs.String("format", "text", "corpus encoding: text or binary")
	out := fs.String("o", "", "corpus destination (default stdout)")
	quiet := fs.Bool("quiet", false, "suppress progress lines")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usage(err)
	}
	format, err := parseFormat(*formatFlag)
	if err != nil {
		return usage(err)
	}
	kernel, err := kernelflag.Resolve(*kernelFlag, report)
	if err != nil {
		if errors.Is(err, kernelflag.ErrHelp) {
			return nil
		}
		return usage(err)
	}
	g, err := loadGraph(*input, *spec)
	if err != nil {
		return usage(err)
	}
	if err := kernel.Validate(g); err != nil {
		return usage(err)
	}

	dest := corpusOut
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dest = f
	}
	cw := &countingWriter{w: dest}

	mapped := ""
	if g.Mapped() {
		mapped = ", mmapped"
	}
	fmt.Fprintf(report, "corpusgen: %s (n=%d, m=%d%s) kernel=%s  %d walks x %d steps from every vertex\n",
		g.Name(), g.N(), g.M(), mapped, kernel, *walks, *length)

	cspec := walk.CorpusSpec{
		WalksPerVertex: *walks,
		Length:         *length,
		Seed:           *seed,
		Format:         format,
		Workers:        *workers,
	}
	start := time.Now()
	if !*quiet {
		last := start
		cspec.Progress = func(done, total int64) {
			now := time.Now()
			if now.Sub(last) < 2*time.Second && done != total {
				return
			}
			last = now
			elapsed := now.Sub(start).Seconds()
			rate := float64(done) * float64(*length) / elapsed
			fmt.Fprintf(report, "  %d/%d walks (%.0f%%), %.3g walker-steps/sec\n",
				done, total, 100*float64(done)/float64(total), rate)
		}
	}
	stats, err := walk.NewEngine(g, walk.EngineOptions{Workers: *workers, Kernel: kernel}).GenerateCorpus(cspec, cw)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(report, "generated %d walks (%d steps, %d bytes %s) in %v -> %.4g walker-steps/sec\n",
		stats.Walks, stats.Steps, cw.n, *formatFlag, elapsed.Round(time.Millisecond),
		float64(stats.Steps)/elapsed.Seconds())
	return nil
}

func main() {
	// With -o the corpus has its own destination and the report owns
	// stdout; without it the corpus takes stdout and the report moves to
	// stderr so the stream stays clean.
	report := io.Writer(os.Stderr)
	for _, a := range os.Args[1:] {
		if a == "-o" || a == "--o" || strings.HasPrefix(a, "-o=") || strings.HasPrefix(a, "--o=") {
			report = os.Stdout
			break
		}
	}
	if err := run(os.Args[1:], report, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}
