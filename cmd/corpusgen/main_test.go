package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"manywalks/internal/graph"
)

// genCorpus runs the CLI with the corpus going to the returned buffer.
func genCorpus(t *testing.T, args ...string) (string, []byte) {
	t.Helper()
	var report, corpus bytes.Buffer
	if err := run(args, &report, &corpus); err != nil {
		t.Fatalf("run %v: %v\n%s", args, err, report.String())
	}
	return report.String(), corpus.Bytes()
}

// TestRunDeterministicAcrossWorkers is the smoke the CI step repeats from
// the shell: both formats, Workers 1 vs 4, byte-identical corpora.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	for _, format := range []string{"text", "binary"} {
		base := []string{"-graph", "margulis:8", "-walks", "2", "-length", "11", "-seed", "7", "-format", format, "-quiet"}
		report, w1 := genCorpus(t, append(base, "-workers", "1")...)
		_, w4 := genCorpus(t, append(base, "-workers", "4")...)
		if !bytes.Equal(w1, w4) {
			t.Fatalf("format %s: corpus differs between workers 1 and 4", format)
		}
		if len(w1) == 0 {
			t.Fatalf("format %s: empty corpus", format)
		}
		if !strings.Contains(report, "128 walks") || !strings.Contains(report, "walker-steps/sec") {
			t.Fatalf("format %s: report missing totals:\n%s", format, report)
		}
	}
}

// TestRunTextShape checks the text corpus parses as n*walks lines of
// length+1 vertices after the two header lines.
func TestRunTextShape(t *testing.T) {
	_, corpus := genCorpus(t, "-graph", "cycle:5", "-walks", "3", "-length", "4", "-quiet")
	lines := strings.Split(strings.TrimSuffix(string(corpus), "\n"), "\n")
	if len(lines) != 2+5*3 {
		t.Fatalf("%d lines, want 2 header + 15 walks", len(lines))
	}
	if lines[0] != "# manywalks corpus" || lines[1] != "5 3 4" {
		t.Fatalf("bad header lines %q, %q", lines[0], lines[1])
	}
	for _, l := range lines[2:] {
		if len(strings.Fields(l)) != 5 {
			t.Fatalf("walk line %q does not have 5 vertices", l)
		}
	}
}

// TestRunInputFile loads the graph through -i (binary file, the mmap
// path) and checks the corpus equals the generator-spec run.
func TestRunInputFile(t *testing.T) {
	g, err := graph.ParseSpec("torus:6")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "torus.mwal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	common := []string{"-walks", "2", "-length", "9", "-seed", "5", "-format", "binary", "-quiet"}
	_, fromSpec := genCorpus(t, append([]string{"-graph", "torus:6"}, common...)...)
	_, fromFile := genCorpus(t, append([]string{"-i", path}, common...)...)
	if !bytes.Equal(fromSpec, fromFile) {
		t.Fatal("corpus from -i file differs from the generator spec run")
	}
}

// TestRunOutputFlag writes the corpus through -o.
func TestRunOutputFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.txt")
	report, inline := genCorpus(t, "-graph", "cycle:4", "-walks", "1", "-length", "3", "-quiet", "-o", path)
	if len(inline) != 0 {
		t.Fatal("-o must leave the inline corpus writer untouched")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || !strings.Contains(report, "4 walks") {
		t.Fatalf("corpus file empty or report wrong:\n%s", report)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var report, corpus bytes.Buffer
	if err := run([]string{"-h"}, &report, &corpus); err != nil || !strings.Contains(report.String(), "-walks") {
		t.Fatalf("-h must print usage, got %v", err)
	}
	for _, bad := range [][]string{
		{"-graph", "nope:1"},
		{"-format", "xml"},
		{"-kernel", "sideways"},
		{"-walks", "0"},
		{"-i", filepath.Join(t.TempDir(), "missing.mwal")},
	} {
		if err := run(bad, &report, &corpus); err == nil {
			t.Fatalf("args %v accepted", bad)
		}
	}
}
