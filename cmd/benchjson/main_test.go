package main

import (
	"strings"
	"testing"
)

// TestCompareRows pins the snapshot diff gate: per-row delta rendering,
// the regression threshold, and tolerance of set growth/shrinkage.
func TestCompareRows(t *testing.T) {
	oldRows := []row{
		{Bench: "A", NsPerOp: 1000},
		{Bench: "B", NsPerOp: 2000},
		{Bench: "C", NsPerOp: 500},
		{Bench: "Gone", NsPerOp: 42},
	}
	newRows := []row{
		{Bench: "A", NsPerOp: 1040},  // +4%: inside a 5% threshold
		{Bench: "B", NsPerOp: 2400},  // +20%: breach
		{Bench: "C", NsPerOp: 400},   // -20%: improvement, never a breach
		{Bench: "Fresh", NsPerOp: 7}, // only in the new set
	}
	rep := compareRows(oldRows, newRows, 5)
	if len(rep.breaches) != 1 || rep.breaches[0] != "B" {
		t.Fatalf("breaches = %v, want [B]", rep.breaches)
	}
	if len(rep.lines) != 5 {
		t.Fatalf("want 5 report lines, got %d:\n%s", len(rep.lines), strings.Join(rep.lines, "\n"))
	}
	joined := strings.Join(rep.lines, "\n")
	for _, want := range []string{"REGRESSION", "(new row)", "(dropped row)", "+4.0%", "-20.0%"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("report missing %q:\n%s", want, joined)
		}
	}
	if strings.Count(joined, "REGRESSION") != 1 {
		t.Fatalf("want exactly one REGRESSION flag:\n%s", joined)
	}

	// A tighter threshold flags the +4% row too; a looser one passes both.
	if rep := compareRows(oldRows, newRows, 2); len(rep.breaches) != 2 {
		t.Fatalf("threshold 2: breaches = %v, want [A B]", rep.breaches)
	}
	if rep := compareRows(oldRows, newRows, 25); len(rep.breaches) != 0 {
		t.Fatalf("threshold 25: breaches = %v, want none", rep.breaches)
	}
}
