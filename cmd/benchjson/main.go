// Command benchjson runs the repository's pinned benchmark set in-process
// and writes machine-readable rows, so the performance trajectory of the
// hot paths accumulates as committed JSON snapshots (BENCH_PR4.json was the
// first). Each row reports ns/op and, for Monte Carlo estimator and serving
// shapes, trials/sec — for the serving rows that is served queries/sec, the
// unit the coalescing dispatcher is gated on (256 concurrent clients
// issuing k=1 hitting-time queries on the Table-1 expander, coalesced vs
// naive per-request dispatch). Since BENCH_PR6 the estimator and coalesced
// serving rows sweep Workers over {1,4,8}; every sweep point draws
// bit-identical samples, so the rows measure pure lane-shard scaling.
// Since BENCH_PR7 the set adds GenerateCorpus rows — bulk truncated walks
// from every vertex streamed to a discard sink — reporting steps_per_sec
// (walker-steps/sec), the corpus acceptance unit. Since BENCH_PR8 the set
// adds AdaptiveEstimate* rows — cover estimates under sequential stopping
// at rtol=0.05 @95% — reporting trials_used, the mean trials-to-tolerance,
// next to their fixed-count twins. Since BENCH_PR9 the set adds
// ServeCluster rows — mixed-shape walk queries over loopback HTTP through
// the shape-affinity router onto 1 or 3 walkd-shaped replicas, affinity vs
// round-robin — whose trials/sec is cluster-served queries/sec. Replica
// scaling (r1 vs r3) needs a multi-core box to show; the affinity vs
// round-robin gap is a batching effect and shows on any box. Since
// BENCH_PR10 the set adds a KCoverKernels row — the same k=64 cover
// workload stepped through a registry-compiled dense hopper row bank —
// tracking the compiled-dispatch path next to the uniform fast-path rows.
//
// -compare diffs the run against an earlier committed snapshot, printing
// the per-row ns/op delta and exiting nonzero if any row regressed past
// -threshold percent — the CI gate form of the trajectory files.
//
// Usage:
//
//	benchjson [-o BENCH.json] [-count 3] [-bench regexp]
//	          [-compare OLD.json] [-threshold 5]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"regexp"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"manywalks/internal/cluster"
	"manywalks/internal/graph"
	"manywalks/internal/httpapi"
	"manywalks/internal/serve"
	"manywalks/internal/walk"
)

// row is one benchmark measurement. trials_used appears only on adaptive
// rows: the mean trials the sequential stop rule spent per estimate — the
// matching fixed row's trial count divided by trials_used is the
// time-to-tolerance saving the adaptive layer is gated on.
type row struct {
	Bench        string  `json:"bench"`
	NsPerOp      float64 `json:"ns_per_op"`
	TrialsPerSec float64 `json:"trials_per_sec,omitempty"`
	StepsPerSec  float64 `json:"steps_per_sec,omitempty"`
	TrialsUsed   float64 `json:"trials_used,omitempty"`
}

// adaptiveUsage accumulates the actual trials an adaptive row's ops spent,
// so the snapshot records mean trials-to-tolerance alongside ns/op.
type adaptiveUsage struct {
	trials, ops atomic.Int64
}

// pinnedBench is one named benchmark of the snapshot set.
type pinnedBench struct {
	name   string
	trials int   // per op; 0 for non-estimator rows
	steps  int64 // walker steps per op; 0 for non-corpus rows
	used   *adaptiveUsage
	fn     func(b *testing.B)
}

// benchWorkerGrid is the Workers sweep of the multicore rows: the
// singleton baseline every earlier snapshot pinned, and the shard counts
// whose scaling the multicore grouped passes are gated on. Near-linear
// w1 -> w4 scaling requires a >=4-vCPU box; on smaller runners the
// multicore rows degrade gracefully and only the w1 rows are comparable
// across snapshots.
var benchWorkerGrid = []int{1, 4, 8}

// workerSuffix names a row's worker count, keeping the w1 names identical
// to the PR-4/PR-5 snapshots so trajectories stay comparable.
func workerSuffix(w int) string {
	if w == 1 {
		return ""
	}
	return fmt.Sprintf("_w%d", w)
}

// pinned is the benchmark set every snapshot runs: the singleton engine
// gate shapes, the hit path, the trial-fused estimator shapes at every
// worker count, and the served-throughput rows.
func pinned() []pinnedBench {
	expander := graph.MargulisExpander(24)
	expander4096 := graph.MargulisExpander(64)
	cycle1024 := graph.Cycle(1024)
	rows := []pinnedBench{
		{"KCoverEngineSeq/expander576", 0, 0, nil, func(b *testing.B) {
			eng := walk.NewEngine(expander, walk.EngineOptions{Workers: 1})
			for i := 0; i < b.N; i++ {
				if !eng.KCoverFrom(0, 64, uint64(i), 1<<40).Covered {
					b.Fatal("not covered")
				}
			}
		}},
		{"KCoverEngineSeq/expander4096", 0, 0, nil, func(b *testing.B) {
			eng := walk.NewEngine(expander4096, walk.EngineOptions{Workers: 1})
			for i := 0; i < b.N; i++ {
				if !eng.KCoverFrom(0, 64, uint64(i), 1<<40).Covered {
					b.Fatal("not covered")
				}
			}
		}},
		// Registry-compiled kernel row (new in PR 10): the same k=64 cover
		// workload stepped through the dense hopper row bank instead of the
		// uniform fast path — the compiled-dispatch cost the open kernel
		// registry is gated on (the KCoverEngineSeq rows above must stay
		// flat, this row tracks the alias-bank ceiling).
		{"KCoverKernels/expander576_hopper_power1", 0, 0, nil, func(b *testing.B) {
			eng := walk.NewEngine(expander, walk.EngineOptions{Workers: 1, Kernel: walk.HopperPower(1)})
			for i := 0; i < b.N; i++ {
				if !eng.KCoverFrom(0, 64, uint64(i), 1<<40).Covered {
					b.Fatal("not covered")
				}
			}
		}},
		// Hopper headline pair (the E-hopper acceptance shape in snapshot
		// form): single-walker cover of cycle(1024) under the uniform walk
		// (Θ(n²) rounds) vs the power-law multi-hopper (~n·ln n rounds).
		// The ns/op ratio records the >=5x cover saving the hopper kernels
		// are gated on.
		{"KCoverKernels/cycle1024_uniform_k1", 0, 0, nil, func(b *testing.B) {
			eng := walk.NewEngine(cycle1024, walk.EngineOptions{Workers: 1})
			for i := 0; i < b.N; i++ {
				if !eng.KCoverFrom(0, 1, uint64(i), 1<<40).Covered {
					b.Fatal("not covered")
				}
			}
		}},
		{"KCoverKernels/cycle1024_hopper_power1_k1", 0, 0, nil, func(b *testing.B) {
			eng := walk.NewEngine(cycle1024, walk.EngineOptions{Workers: 1, Kernel: walk.HopperPower(1)})
			for i := 0; i < b.N; i++ {
				if !eng.KCoverFrom(0, 1, uint64(i), 1<<40).Covered {
					b.Fatal("not covered")
				}
			}
		}},
		{"KHitEngine/expander576", 0, 0, nil, func(b *testing.B) {
			marked := make([]bool, expander.N())
			for v := 50; v < expander.N(); v += 97 {
				marked[v] = true
			}
			starts := make([]int32, 64)
			eng := walk.NewEngine(expander, walk.EngineOptions{Workers: 1})
			for i := 0; i < b.N; i++ {
				if !eng.KHit(starts, marked, uint64(i), 1<<20).Hit {
					b.Fatal("no hit")
				}
			}
		}},
	}
	// Estimator rows at every worker count: identical per-trial samples,
	// lane shards across Workers goroutines.
	for _, w := range benchWorkerGrid {
		w := w
		rows = append(rows,
			pinnedBench{"EstimateKCoverTime/expander576_k64_t256_w" + fmt.Sprint(w), 256, 0, nil, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					est, err := walk.EstimateKCoverTime(expander, 0, 64, walk.MCOptions{
						Trials: 256, Workers: w, Seed: uint64(i), MaxSteps: 1 << 20,
					})
					if err != nil || est.Truncated != 0 {
						b.Fatalf("estimate failed: %v", err)
					}
				}
			}},
			pinnedBench{"EstimateCoverTime/expander576_k1_t64_w" + fmt.Sprint(w), 64, 0, nil, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					est, err := walk.EstimateCoverTime(expander, 0, walk.MCOptions{
						Trials: 64, Workers: w, Seed: uint64(i), MaxSteps: 1 << 24,
					})
					if err != nil || est.Truncated != 0 {
						b.Fatalf("estimate failed: %v", err)
					}
				}
			}},
			pinnedBench{"EstimateHittingTime/expander576_t256_w" + fmt.Sprint(w), 256, 0, nil, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := walk.EstimateHittingTime(expander, 0, 300, walk.MCOptions{
						Trials: 256, Workers: w, Seed: uint64(i), MaxSteps: 1 << 24,
					}); err != nil {
						b.Fatalf("estimate failed: %v", err)
					}
				}
			}},
		)
	}
	// Adaptive sequential-stopping rows (new in PR 8): cover shapes with
	// rtol=0.05 @95% and the fixed count as trial budget. Each pairs with a
	// fixed-count row of the same shape (k64 with the t256 row above, k16
	// with its own t256 row here); fixed-trials / trials_used is the
	// trials-to-tolerance saving, and the ns/op ratio the wall-clock
	// saving, that the adaptive layer is gated on (>=3x and >=2x).
	rows = append(rows, pinnedBench{"EstimateKCoverTime/expander576_k16_t256_w1", 256, 0, nil, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			est, err := walk.EstimateKCoverTime(expander, 0, 16, walk.MCOptions{
				Trials: 256, Workers: 1, Seed: uint64(i), MaxSteps: 1 << 20,
			})
			if err != nil || est.Truncated != 0 {
				b.Fatalf("estimate failed: %v", err)
			}
		}
	}})
	adaptivePrec := walk.Precision{RTol: 0.05, Confidence: 0.95, Wave: 16}
	for _, shape := range []struct {
		name string
		k    int
	}{
		{"AdaptiveEstimateKCoverTime/expander576_k64_rtol05", 64},
		{"AdaptiveEstimateKCoverTime/expander576_k16_rtol05", 16},
	} {
		shape := shape
		used := &adaptiveUsage{}
		rows = append(rows, pinnedBench{shape.name, 0, 0, used, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est, err := walk.EstimateKCoverTime(expander, 0, shape.k, walk.MCOptions{
					Trials: 256, Workers: 1, Seed: uint64(i), MaxSteps: 1 << 20,
					Precision: adaptivePrec,
				})
				if err != nil || !est.Converged {
					b.Fatalf("adaptive estimate failed: err=%v est=%+v", err, est)
				}
				used.trials.Add(int64(est.Summary.N))
				used.ops.Add(1)
			}
		}})
	}
	// Served-throughput rows: 256 concurrent clients issuing k=1
	// hitting-time walk queries (the cmd/walkload acceptance shape);
	// trials/sec is served queries/sec. The coalesced row sweeps the
	// server's per-pass worker count (the w-less name is the w1 row of the
	// earlier snapshots); the naive path has no grouped passes to shard.
	rows = append(rows, pinnedBench{"ServeWalkQuery/expander576_c256_naive", 1, 0, nil, servedThroughput(expander, true, 1)})
	for _, w := range benchWorkerGrid {
		rows = append(rows, pinnedBench{"ServeWalkQuery/expander576_c256_coalesced" + workerSuffix(w), 1, 0, nil, servedThroughput(expander, false, w)})
	}
	// Cluster-served rows (new in PR 9): 256 concurrent HTTP clients issuing
	// k=1 hitting-time walk queries over 8 distinct shapes through the
	// shape-affinity router. r1 is the single-replica HTTP baseline; r3
	// affinity vs r3 roundrobin isolates what routing policy does to batch
	// width (round-robin fragments each shape's stream across replicas).
	rows = append(rows,
		pinnedBench{"ServeCluster/expander576_c256_s8_r1_affinity", 1, 0, nil, clusterThroughput(expander, 1, cluster.Affinity)},
		pinnedBench{"ServeCluster/expander576_c256_s8_r3_affinity", 1, 0, nil, clusterThroughput(expander, 3, cluster.Affinity)},
		pinnedBench{"ServeCluster/expander576_c256_s8_r3_roundrobin", 1, 0, nil, clusterThroughput(expander, 3, cluster.RoundRobin)},
	)
	// Corpus-throughput rows (new in PR 7): 10 truncated walks of length 80
	// from every vertex of the 4096-vertex expander, streamed to a discard
	// sink; steps/sec is walker-steps/sec, the corpus acceptance unit. Text
	// and binary differ only in encoder cost.
	corpusSteps := int64(expander4096.N()) * 10 * 80
	for _, w := range []int{1, 4} {
		rows = append(rows,
			pinnedBench{"GenerateCorpus/expander4096_w10_l80_text" + workerSuffix(w), 0, corpusSteps, nil,
				corpusThroughput(expander4096, walk.CorpusText, w)},
			pinnedBench{"GenerateCorpus/expander4096_w10_l80_binary" + workerSuffix(w), 0, corpusSteps, nil,
				corpusThroughput(expander4096, walk.CorpusBinary, w)},
		)
	}
	return rows
}

// corpusThroughput benchmarks GenerateCorpus end to end — grouped engine
// passes plus the encoder — with the corpus streamed to io.Discard so the
// row measures generation, not disk.
func corpusThroughput(g *graph.Graph, format walk.CorpusFormat, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		eng := walk.NewEngine(g, walk.EngineOptions{Workers: workers})
		for i := 0; i < b.N; i++ {
			spec := walk.CorpusSpec{
				WalksPerVertex: 10, Length: 80, Seed: uint64(i), Format: format, Workers: workers,
			}
			if _, err := eng.GenerateCorpus(spec, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// servedThroughput benchmarks one query served through an in-process
// serve.Server under 256 persistent concurrent clients; each op is one
// query, so ns/op is the served per-query latency budget and trials/sec
// (trials = 1) is queries/sec.
func servedThroughput(g *graph.Graph, naive bool, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		s := serve.NewServer(serve.Options{NoCoalesce: naive, Workers: workers})
		defer s.Close()
		if err := s.RegisterGraph("g", g); err != nil {
			b.Fatal(err)
		}
		query := func(seed uint64) error {
			_, err := s.WalkQuery(context.Background(), serve.WalkQueryRequest{
				Graph: "g", Origin: 0, K: 1, TTL: 1 << 20, Targets: []int32{300}, Seed: seed,
			})
			return err
		}
		if err := query(^uint64(0)); err != nil { // warm the engine cache untimed
			b.Fatal(err)
		}
		var seed atomic.Uint64
		var remaining atomic.Int64
		remaining.Store(int64(b.N))
		b.ResetTimer()
		var wg sync.WaitGroup
		for c := 0; c < 256; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for remaining.Add(-1) >= 0 {
					if err := query(seed.Add(1)); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

// clusterThroughput benchmarks walk queries served through the
// shape-affinity router over a loopback fleet, end to end over HTTP: 256
// persistent concurrent clients spread over 8 distinct single-target
// shapes, each op one query. The fleet and router are rebuilt per
// measurement outside the timed window.
func clusterThroughput(g *graph.Graph, replicas int, policy cluster.Policy) func(b *testing.B) {
	const clients, shapes = 256, 8
	return func(b *testing.B) {
		var cleanup []func()
		defer func() {
			for i := len(cleanup) - 1; i >= 0; i-- {
				cleanup[i]()
			}
		}()
		urls := make([]string, 0, replicas)
		for i := 0; i < replicas; i++ {
			s := serve.NewServer(serve.Options{Workers: 1})
			if err := s.RegisterGraph("g", g); err != nil {
				b.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			hs := &http.Server{Handler: httpapi.NewMux(s, 30*time.Second)}
			go func() { _ = hs.Serve(ln) }()
			cleanup = append(cleanup, s.Close, func() { _ = hs.Close() })
			urls = append(urls, "http://"+ln.Addr().String())
		}
		rt, err := cluster.New(cluster.Options{
			Backends: urls, Policy: policy, HealthInterval: -1, MaxIdlePerBackend: clients,
		})
		if err != nil {
			b.Fatal(err)
		}
		cleanup = append(cleanup, rt.Close)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		front := &http.Server{Handler: rt}
		go func() { _ = front.Serve(ln) }()
		cleanup = append(cleanup, func() { _ = front.Close() })
		frontURL := "http://" + ln.Addr().String()

		transport := &http.Transport{MaxIdleConns: 2 * clients, MaxIdleConnsPerHost: clients}
		client := &http.Client{Transport: transport, Timeout: 60 * time.Second}
		cleanup = append(cleanup, transport.CloseIdleConnections)
		targets := make([]int32, shapes)
		for j := range targets {
			targets[j] = int32((300 + j*31) % g.N())
		}
		query := func(shape int, seed uint64) error {
			body, err := json.Marshal(map[string]any{
				"graph": "g", "origin": 0, "k": 1, "ttl": 1 << 20,
				"targets": []int32{targets[shape]}, "seed": seed,
			})
			if err != nil {
				return err
			}
			resp, err := client.Post(frontURL+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d", resp.StatusCode)
			}
			return nil
		}
		for j := range targets { // warm every shape's engine untimed
			if err := query(j, ^uint64(0)); err != nil {
				b.Fatal(err)
			}
		}
		var seed atomic.Uint64
		var remaining atomic.Int64
		remaining.Store(int64(b.N))
		b.ResetTimer()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for remaining.Add(-1) >= 0 {
					if err := query(c%shapes, seed.Add(1)); err != nil {
						b.Error(err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		b.StopTimer()
	}
}

// compareReport is the outcome of diffing a run against an earlier
// snapshot: one rendered line per comparable row, plus the names of rows
// whose ns/op regressed past the threshold.
type compareReport struct {
	lines    []string
	breaches []string
}

// compareRows diffs new rows against an earlier snapshot by bench name:
// the ns/op delta percentage per row, with rows slower than the old
// snapshot by more than threshold percent flagged as breaches. Rows
// present in only one set are reported but never breach — the pinned set
// is allowed to grow between snapshots.
func compareRows(oldRows, newRows []row, threshold float64) compareReport {
	oldBy := make(map[string]row, len(oldRows))
	for _, r := range oldRows {
		oldBy[r.Bench] = r
	}
	var rep compareReport
	seen := make(map[string]bool, len(newRows))
	for _, nr := range newRows {
		seen[nr.Bench] = true
		or, ok := oldBy[nr.Bench]
		if !ok {
			rep.lines = append(rep.lines, fmt.Sprintf("%-48s %12.0f ns/op   (new row)", nr.Bench, nr.NsPerOp))
			continue
		}
		delta := 100 * (nr.NsPerOp - or.NsPerOp) / or.NsPerOp
		line := fmt.Sprintf("%-48s %12.0f -> %12.0f ns/op  %+7.1f%%", nr.Bench, or.NsPerOp, nr.NsPerOp, delta)
		if delta > threshold {
			line += "  REGRESSION"
			rep.breaches = append(rep.breaches, nr.Bench)
		}
		rep.lines = append(rep.lines, line)
	}
	for _, or := range oldRows {
		if !seen[or.Bench] {
			rep.lines = append(rep.lines, fmt.Sprintf("%-48s %12.0f ns/op   (dropped row)", or.Bench, or.NsPerOp))
		}
	}
	return rep
}

func main() {
	out := flag.String("o", "BENCH_PR10.json", "output path for the JSON rows")
	count := flag.Int("count", 3, "runs per benchmark; the best (min ns/op) is recorded")
	match := flag.String("bench", "", "run only benchmarks whose name matches this regexp (CI smoke)")
	compare := flag.String("compare", "", "earlier snapshot JSON to diff against; regressions past -threshold exit nonzero")
	threshold := flag.Float64("threshold", 5, "max ns/op regression percent tolerated by -compare")
	flag.Parse()

	var filter *regexp.Regexp
	if *match != "" {
		var err error
		if filter, err = regexp.Compile(*match); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
	}
	var oldRows []row
	if *compare != "" {
		data, err := os.ReadFile(*compare)
		if err == nil {
			err = json.Unmarshal(data, &oldRows)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -compare:", err)
			os.Exit(2)
		}
	}
	rows := make([]row, 0, 8)
	for _, p := range pinned() {
		if filter != nil && !filter.MatchString(p.name) {
			continue
		}
		best := testing.BenchmarkResult{}
		for c := 0; c < *count; c++ {
			res := testing.Benchmark(p.fn)
			if best.N == 0 || res.NsPerOp() < best.NsPerOp() {
				best = res
			}
		}
		r := row{Bench: p.name, NsPerOp: float64(best.NsPerOp())}
		if p.trials > 0 && best.T > 0 {
			r.TrialsPerSec = float64(p.trials) * float64(best.N) / best.T.Seconds()
		}
		if p.steps > 0 && best.T > 0 {
			r.StepsPerSec = float64(p.steps) * float64(best.N) / best.T.Seconds()
		}
		if p.used != nil && p.used.ops.Load() > 0 {
			r.TrialsUsed = float64(p.used.trials.Load()) / float64(p.used.ops.Load())
		}
		rows = append(rows, r)
		fmt.Printf("%-48s %12.0f ns/op", r.Bench, r.NsPerOp)
		if r.TrialsPerSec > 0 {
			fmt.Printf(" %10.0f trials/sec", r.TrialsPerSec)
		}
		if r.StepsPerSec > 0 {
			fmt.Printf(" %12.3g steps/sec", r.StepsPerSec)
		}
		if r.TrialsUsed > 0 {
			fmt.Printf(" %8.1f trials used", r.TrialsUsed)
		}
		fmt.Println()
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks match", *match)
		os.Exit(2)
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
	if *compare != "" {
		rep := compareRows(oldRows, rows, *threshold)
		fmt.Printf("compare vs %s (threshold %.1f%%):\n", *compare, *threshold)
		for _, line := range rep.lines {
			fmt.Println(" ", line)
		}
		if len(rep.breaches) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d row(s) regressed past %.1f%%: %v\n",
				len(rep.breaches), *threshold, rep.breaches)
			os.Exit(1)
		}
		fmt.Println("compare: no regressions past threshold")
	}
}
