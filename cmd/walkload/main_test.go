package main

import (
	"strings"
	"testing"
)

// TestRunTinyLoad drives the whole flag-to-report path with a small shape
// in both modes, which also exercises the bit-for-bit verification.
func TestRunTinyLoad(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-graph", "margulis:8", "-clients", "8", "-queries", "4",
		"-k", "2", "-ttl", "4096", "-targets", "40,50", "-seed", "3",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"naive", "coalesced", "bit-for-bit", "speedup:", "lat p50", "p95", "p99"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunAdaptiveMode drives -mode adaptive end to end on a tiny shape and
// checks the time-to-tolerance report.
func TestRunAdaptiveMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-graph", "margulis:8", "-mode", "adaptive", "-clients", "4",
		"-k", "4", "-ttl", "65536", "-trials", "512", "-rtol", "0.2", "-seed", "9",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"fixed", "adaptive", "time-to-tolerance", "rtol=0.2", "lat p50", "converged"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunClusterMode drives -mode cluster end to end: an in-process
// 3-replica fleet behind the shape-affinity router, mixed-shape traffic
// with shadow verification on, and the bit-for-bit check against the
// standalone computation.
func TestRunClusterMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-graph", "margulis:8", "-mode", "cluster", "-clients", "9", "-queries", "4",
		"-ttl", "4096", "-replicas", "3", "-shapes", "3", "-shadow", "2", "-seed", "5",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"policy=affinity replicas=3", "unrouted=0", "shadow_mismatches=0",
		"replica 0:", "replica 2:", "verify: all 36 cluster answers bit-for-bit",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "shadow_checks=") || strings.Contains(got, "shadow_checks=0") {
		t.Fatalf("shadow sampling did not run:\n%s", got)
	}

	// Round-robin over the same fleet must spread one shape across replicas.
	out.Reset()
	err = run([]string{
		"-graph", "margulis:8", "-mode", "cluster", "-clients", "6", "-queries", "3",
		"-ttl", "4096", "-replicas", "2", "-shapes", "1", "-policy", "roundrobin", "-seed", "5",
	}, &out)
	if err != nil {
		t.Fatalf("roundrobin run: %v\n%s", err, out.String())
	}
	if got := out.String(); !strings.Contains(got, "policy=roundrobin") ||
		strings.Contains(got, "requests=0 ") {
		t.Fatalf("round-robin left a replica idle:\n%s", got)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil || !strings.Contains(out.String(), "-clients") {
		t.Fatalf("-h must print usage, got %v", err)
	}
	for _, bad := range [][]string{
		{"-graph", "nope:1"},
		{"-mode", "sideways"},
		{"-targets", "x"},
		{"-clients", "0"},
		{"-mode", "cluster", "-replicas", "0"},
		{"-mode", "cluster", "-shapes", "0"},
		{"-mode", "cluster", "-shadow", "-1"},
		{"-mode", "cluster", "-policy", "random"},
	} {
		if err := run(bad, &out); err == nil {
			t.Fatalf("args %v accepted", bad)
		}
	}
}
