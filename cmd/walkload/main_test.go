package main

import (
	"strings"
	"testing"
)

// TestRunTinyLoad drives the whole flag-to-report path with a small shape
// in both modes, which also exercises the bit-for-bit verification.
func TestRunTinyLoad(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-graph", "margulis:8", "-clients", "8", "-queries", "4",
		"-k", "2", "-ttl", "4096", "-targets", "40,50", "-seed", "3",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"naive", "coalesced", "bit-for-bit", "speedup:", "lat p50", "p95", "p99"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunAdaptiveMode drives -mode adaptive end to end on a tiny shape and
// checks the time-to-tolerance report.
func TestRunAdaptiveMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-graph", "margulis:8", "-mode", "adaptive", "-clients", "4",
		"-k", "4", "-ttl", "65536", "-trials", "512", "-rtol", "0.2", "-seed", "9",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"fixed", "adaptive", "time-to-tolerance", "rtol=0.2", "lat p50", "converged"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil || !strings.Contains(out.String(), "-clients") {
		t.Fatalf("-h must print usage, got %v", err)
	}
	for _, bad := range [][]string{
		{"-graph", "nope:1"},
		{"-mode", "sideways"},
		{"-targets", "x"},
		{"-clients", "0"},
	} {
		if err := run(bad, &out); err == nil {
			t.Fatalf("args %v accepted", bad)
		}
	}
}
