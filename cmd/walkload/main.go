// Command walkload is the concurrent load generator for the serving layer:
// it spins up an in-process serve.Server, points many concurrent clients at
// it with same-shape hitting-time walk queries, and measures served
// queries/sec under the two dispatch modes — coalesced (requests folded
// into grouped engine passes) and naive (one Engine.Run per request) — then
// verifies every pair of answers is bit-for-bit equal.
//
// The default shape is the acceptance workload: 256 concurrent clients
// issuing k=1 hitting-time queries on the Table-1 expander (margulis:24,
// n=576).
//
// Usage:
//
//	walkload [-graph margulis:24] [-clients 256] [-queries 16] [-k 1]
//	         [-ttl 1048576] [-targets 300] [-origin 0] [-seed 1]
//	         [-kernel uniform] [-mode both] [-tick 200us] [-workers 1]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"manywalks/internal/graph"
	"manywalks/internal/netsim"
	"manywalks/internal/serve"
	"manywalks/internal/walk"
)

var errUsage = errors.New("usage error")

func usage(err error) error { return fmt.Errorf("%w: %w", errUsage, err) }

// loadResult is one mode's measurement.
type loadResult struct {
	answers []netsim.QueryResult
	errs    int
	elapsed time.Duration
	stats   serve.Stats
}

func (r loadResult) qps() float64 {
	return float64(len(r.answers)) / r.elapsed.Seconds()
}

// runLoad drives clients × queries walk queries through one server and
// collects the answers in issue order (client-major), so the two modes'
// answer vectors are directly comparable.
func runLoad(g *graph.Graph, kernel walk.Kernel, opts serve.Options,
	clients, queries, k, ttl int, origin int32, targets []int32, seed uint64, workers int) (loadResult, error) {
	opts.Workers = workers
	srv := serve.NewServer(opts)
	defer srv.Close()
	if err := srv.RegisterGraph("load", g); err != nil {
		return loadResult{}, err
	}
	// Warm the engine cache outside the timed window: both modes pay
	// compilation once, not inside the throughput measurement.
	if _, err := srv.WalkQuery(context.Background(), serve.WalkQueryRequest{
		Graph: "load", Kernel: kernel, Origin: origin, K: k, TTL: ttl, Targets: targets, Seed: ^seed,
	}); err != nil {
		return loadResult{}, err
	}
	res := loadResult{answers: make([]netsim.QueryResult, clients*queries)}
	var errCount sync.Map
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				i := c*queries + q
				a, err := srv.WalkQuery(context.Background(), serve.WalkQueryRequest{
					Graph: "load", Kernel: kernel, Origin: origin, K: k, TTL: ttl,
					Targets: targets, Seed: seed + uint64(i),
				})
				if err != nil {
					errCount.Store(i, err)
					continue
				}
				res.answers[i] = a
			}
		}(c)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	errCount.Range(func(any, any) bool { res.errs++; return true })
	res.stats = srv.Stats()
	return res, nil
}

func parseTargets(s string) ([]int32, error) {
	var out []int32
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseInt(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad target %q: %w", f, err)
		}
		out = append(out, int32(v))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("need at least one target vertex")
	}
	return out, nil
}

// run executes the load measurement; tests drive it with tiny shapes.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("walkload", flag.ContinueOnError)
	fs.SetOutput(out)
	spec := fs.String("graph", "margulis:24", "graph spec (the default is the Table-1 expander, n=576)")
	clients := fs.Int("clients", 256, "concurrent clients")
	queries := fs.Int("queries", 16, "queries per client")
	k := fs.Int("k", 1, "walkers per query")
	ttl := fs.Int("ttl", 1<<20, "per-query round budget")
	targetsFlag := fs.String("targets", "300", "target vertices, comma-separated")
	origin := fs.Int("origin", 0, "query origin vertex")
	seed := fs.Uint64("seed", 1, "base seed; query i uses seed+i")
	kernelFlag := fs.String("kernel", "uniform", "walk kernel")
	mode := fs.String("mode", "both", "naive, coalesced, or both (both verifies bit-for-bit equality)")
	tick := fs.Duration("tick", 200*time.Microsecond, "coalescer gather window")
	workers := fs.Int("workers", 1, "workers per grouped pass (0 = engine default)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usage(err)
	}
	if *clients < 1 || *queries < 1 {
		return usage(fmt.Errorf("clients and queries must be >= 1"))
	}
	g, err := graph.ParseSpec(*spec)
	if err != nil {
		return usage(err)
	}
	kernel, err := walk.ParseKernel(*kernelFlag)
	if err != nil {
		return usage(err)
	}
	targets, err := parseTargets(*targetsFlag)
	if err != nil {
		return usage(err)
	}
	total := *clients * *queries
	fmt.Fprintf(out, "walkload: %s (n=%d) k=%d ttl=%d targets=%v kernel=%s  %d clients x %d queries = %d\n",
		*spec, g.N(), *k, *ttl, targets, kernel, *clients, *queries, total)

	var naive, coalesced loadResult
	runMode := func(noCoalesce bool) (loadResult, error) {
		return runLoad(g, kernel, serve.Options{Tick: *tick, NoCoalesce: noCoalesce},
			*clients, *queries, *k, *ttl, int32(*origin), targets, *seed, *workers)
	}
	switch *mode {
	case "naive", "coalesced", "both":
	default:
		return usage(fmt.Errorf("unknown mode %q", *mode))
	}
	if *mode == "naive" || *mode == "both" {
		if naive, err = runMode(true); err != nil {
			return err
		}
		fmt.Fprintf(out, "naive      %6d queries in %12v  -> %8.0f q/s   (per-request Engine.Run)\n",
			total, naive.elapsed.Round(time.Millisecond), naive.qps())
	}
	if *mode == "coalesced" || *mode == "both" {
		if coalesced, err = runMode(false); err != nil {
			return err
		}
		st := coalesced.stats
		meanLanes := 0.0
		if st.Passes > 0 {
			meanLanes = float64(st.Lanes) / float64(st.Passes)
		}
		fmt.Fprintf(out, "coalesced  %6d queries in %12v  -> %8.0f q/s   (%d grouped passes, mean %.0f lanes/pass)\n",
			total, coalesced.elapsed.Round(time.Millisecond), coalesced.qps(), st.Passes, meanLanes)
	}
	if naive.errs+coalesced.errs > 0 {
		return fmt.Errorf("request errors: naive %d, coalesced %d", naive.errs, coalesced.errs)
	}
	if *mode == "both" {
		for i := range naive.answers {
			if naive.answers[i] != coalesced.answers[i] {
				return fmt.Errorf("answer %d differs: naive %+v, coalesced %+v", i, naive.answers[i], coalesced.answers[i])
			}
		}
		speedup := coalesced.qps() / naive.qps()
		fmt.Fprintf(out, "verify: all %d coalesced answers bit-for-bit equal to naive dispatch\n", total)
		fmt.Fprintf(out, "speedup: %.2fx\n", speedup)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "walkload:", err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}
