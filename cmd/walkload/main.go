// Command walkload is the concurrent load generator for the serving layer:
// it spins up an in-process serve.Server, points many concurrent clients at
// it with same-shape hitting-time walk queries, and measures served
// queries/sec under the two dispatch modes — coalesced (requests folded
// into grouped engine passes) and naive (one Engine.Run per request) — then
// verifies every pair of answers is bit-for-bit equal.
//
// The default shape is the acceptance workload: 256 concurrent clients
// issuing k=1 hitting-time queries on the Table-1 expander (margulis:24,
// n=576).
//
// Every mode reports per-request latency percentiles (p50/p95/p99).
// -mode adaptive instead measures time-to-tolerance: concurrent k-cover
// estimates served with sequential stopping (-rtol, -confidence) versus
// the same requests at the full fixed -trials budget.
//
// -mode cluster drives mixed-shape traffic over HTTP through a
// shape-affinity router (internal/cluster) onto a fleet of -replicas
// in-process walkd-shaped backends (or an external router via -router),
// reporting aggregate q/s, the per-replica request distribution, and the
// router's failover/shadow-verification counters; every answer is verified
// bit-for-bit against the standalone sequential computation. All HTTP
// traffic shares one sized http.Transport (keep-alives on,
// MaxIdleConnsPerHost >= -clients) so the measurement exercises the
// serving stack, not connection churn.
//
// Usage:
//
//	walkload [-graph margulis:24] [-clients 256] [-queries 16] [-k 1]
//	         [-ttl 1048576] [-targets 300] [-origin 0] [-seed 1]
//	         [-kernel uniform] [-mode both] [-tick 200us] [-workers 1]
//	         [-trials 1024] [-rtol 0.05] [-confidence 0.95]
//	         [-replicas 3] [-policy affinity] [-shapes 8] [-shadow 0]
//	         [-router http://host:8370] [-verify]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"manywalks/internal/cluster"
	"manywalks/internal/graph"
	"manywalks/internal/httpapi"
	"manywalks/internal/kernelflag"
	"manywalks/internal/netsim"
	"manywalks/internal/serve"
	"manywalks/internal/stats"
	"manywalks/internal/walk"
)

var errUsage = errors.New("usage error")

func usage(err error) error { return fmt.Errorf("%w: %w", errUsage, err) }

// loadResult is one mode's measurement.
type loadResult struct {
	answers   []netsim.QueryResult
	latencies []float64 // per-request latency, milliseconds, issue order
	errs      int
	elapsed   time.Duration
	stats     serve.Stats
}

func (r loadResult) qps() float64 {
	return float64(len(r.answers)) / r.elapsed.Seconds()
}

// latencyLine renders the p50/p95/p99 per-request latency percentiles.
func latencyLine(latencies []float64) string {
	return fmt.Sprintf("lat p50 %.2fms p95 %.2fms p99 %.2fms",
		stats.Quantile(latencies, 0.50),
		stats.Quantile(latencies, 0.95),
		stats.Quantile(latencies, 0.99))
}

// runLoad drives clients × queries walk queries through one server and
// collects the answers in issue order (client-major), so the two modes'
// answer vectors are directly comparable.
func runLoad(g *graph.Graph, kernel walk.Kernel, opts serve.Options,
	clients, queries, k, ttl int, origin int32, targets []int32, seed uint64, workers int) (loadResult, error) {
	opts.Workers = workers
	srv := serve.NewServer(opts)
	defer srv.Close()
	if err := srv.RegisterGraph("load", g); err != nil {
		return loadResult{}, err
	}
	// Warm the engine cache outside the timed window: both modes pay
	// compilation once, not inside the throughput measurement.
	if _, err := srv.WalkQuery(context.Background(), serve.WalkQueryRequest{
		Graph: "load", Kernel: kernel, Origin: origin, K: k, TTL: ttl, Targets: targets, Seed: ^seed,
	}); err != nil {
		return loadResult{}, err
	}
	res := loadResult{
		answers:   make([]netsim.QueryResult, clients*queries),
		latencies: make([]float64, clients*queries),
	}
	var errCount sync.Map
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				i := c*queries + q
				t0 := time.Now()
				a, err := srv.WalkQuery(context.Background(), serve.WalkQueryRequest{
					Graph: "load", Kernel: kernel, Origin: origin, K: k, TTL: ttl,
					Targets: targets, Seed: seed + uint64(i),
				})
				res.latencies[i] = float64(time.Since(t0)) / float64(time.Millisecond)
				if err != nil {
					errCount.Store(i, err)
					continue
				}
				res.answers[i] = a
			}
		}(c)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	errCount.Range(func(any, any) bool { res.errs++; return true })
	res.stats = srv.Stats()
	return res, nil
}

// runAdaptiveLoad is -mode adaptive: clients concurrent k-cover estimates,
// each its own seed, served through the coalescing server — once at the
// full fixed budget and once adaptively at rtol — reporting
// time-to-tolerance: the trials and wall clock the sequential-stopping
// runs needed versus what the fixed budget spends.
func runAdaptiveLoad(out io.Writer, g *graph.Graph, kernel walk.Kernel, opts serve.Options,
	clients, k int, maxSteps int64, origin int32, seed uint64, trials int, prec walk.Precision, workers int) error {
	opts.Workers = workers
	srv := serve.NewServer(opts)
	defer srv.Close()
	if err := srv.RegisterGraph("load", g); err != nil {
		return err
	}
	// Warm the engine cache outside the timed windows.
	if _, err := srv.CoverTime(context.Background(), serve.CoverTimeRequest{
		Graph: "load", Kernel: kernel, Start: origin, K: k, Trials: 1, Seed: ^seed, MaxSteps: maxSteps,
	}); err != nil {
		return err
	}
	measure := func(p walk.Precision) ([]walk.Estimate, []float64, time.Duration, error) {
		ests := make([]walk.Estimate, clients)
		lats := make([]float64, clients)
		errs := make([]error, clients)
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				t0 := time.Now()
				ests[c], errs[c] = srv.CoverTime(context.Background(), serve.CoverTimeRequest{
					Graph: "load", Kernel: kernel, Start: origin, K: k,
					Trials: trials, Seed: seed + uint64(c), MaxSteps: maxSteps, Precision: p,
				})
				lats[c] = float64(time.Since(t0)) / float64(time.Millisecond)
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for c, err := range errs {
			if err != nil {
				return nil, nil, 0, fmt.Errorf("client %d: %w", c, err)
			}
		}
		return ests, lats, elapsed, nil
	}
	_, fixedLats, fixedElapsed, err := measure(walk.Precision{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fixed      %4d estimates x %d trials in %12v   %s\n",
		clients, trials, fixedElapsed.Round(time.Millisecond), latencyLine(fixedLats))
	adEsts, adLats, adElapsed, err := measure(prec)
	if err != nil {
		return err
	}
	trialsUsed := make([]float64, clients)
	converged := 0
	for c, e := range adEsts {
		trialsUsed[c] = float64(e.Summary.N)
		if e.Converged {
			converged++
		}
	}
	meanTrials := stats.Summarize(trialsUsed).Mean
	fmt.Fprintf(out, "adaptive   %4d estimates, mean %.0f trials (%d/%d converged) in %12v   %s\n",
		clients, meanTrials, converged, clients, adElapsed.Round(time.Millisecond), latencyLine(adLats))
	fmt.Fprintf(out, "time-to-tolerance: rtol=%g reached in %v  speedup %.2fx wall-clock, %.2fx trials\n",
		prec.RTol, adElapsed.Round(time.Millisecond),
		fixedElapsed.Seconds()/adElapsed.Seconds(), float64(trials)/meanTrials)
	return nil
}

// clusterConfig parameterizes -mode cluster.
type clusterConfig struct {
	routerURL string // external router; "" spawns an in-process fleet
	replicas  int
	policy    cluster.Policy
	shadow    int
	shapes    int
	clients   int
	queries   int
	k, ttl    int
	origin    int32
	baseTgt   int32
	seed      uint64
	tick      time.Duration
	workers   int
	verify    bool
}

// localReplica is one in-process walkd-shaped backend on a loopback port.
type localReplica struct {
	srv  *serve.Server
	http *http.Server
	url  string
}

func startReplica(g *graph.Graph, tick time.Duration, workers int) (*localReplica, error) {
	srv := serve.NewServer(serve.Options{Tick: tick, Workers: workers})
	if err := srv.RegisterGraph("load", g); err != nil {
		srv.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	r := &localReplica{
		srv:  srv,
		http: &http.Server{Handler: httpapi.NewMux(srv, 30*time.Second)},
		url:  "http://" + ln.Addr().String(),
	}
	go func() { _ = r.http.Serve(ln) }()
	return r, nil
}

func (r *localReplica) close() {
	_ = r.http.Close()
	r.srv.Close()
}

// runClusterLoad is -mode cluster: mixed-shape walk-query traffic through
// a shape-affinity (or round-robin) router over a walkd fleet, measured
// over HTTP end to end and verified bit-for-bit against the standalone
// sequential computation.
func runClusterLoad(out io.Writer, g *graph.Graph, kernel walk.Kernel, cfg clusterConfig) error {
	// shapeTargets spreads the shapes over distinct single-target sets so
	// the traffic is genuinely mixed-shape (what affinity routing sorts).
	shapeTargets := make([]int32, cfg.shapes)
	n := int32(g.N())
	for j := range shapeTargets {
		t := (cfg.baseTgt + int32(j)*31) % n
		if t == cfg.origin {
			t = (t + 1) % n
		}
		shapeTargets[j] = t
	}

	routerURL := cfg.routerURL
	if routerURL == "" {
		replicas := make([]*localReplica, 0, cfg.replicas)
		defer func() {
			for _, r := range replicas {
				r.close()
			}
		}()
		urls := make([]string, 0, cfg.replicas)
		for i := 0; i < cfg.replicas; i++ {
			r, err := startReplica(g, cfg.tick, cfg.workers)
			if err != nil {
				return err
			}
			replicas = append(replicas, r)
			urls = append(urls, r.url)
		}
		rt, err := cluster.New(cluster.Options{
			Backends:          urls,
			Policy:            cfg.policy,
			ShadowSample:      cfg.shadow,
			HealthInterval:    -1, // loopback fleet: passive detection only
			MaxIdlePerBackend: cfg.clients,
		})
		if err != nil {
			return err
		}
		defer rt.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		front := &http.Server{Handler: rt}
		go func() { _ = front.Serve(ln) }()
		defer front.Close()
		routerURL = "http://" + ln.Addr().String()
	}

	// The shared sized transport: keep-alives on and an idle pool at least
	// as deep as the client concurrency, so the timed window measures the
	// routing and serving stack rather than TCP connection churn.
	transport := &http.Transport{
		MaxIdleConns:        2 * cfg.clients,
		MaxIdleConnsPerHost: cfg.clients,
		IdleConnTimeout:     90 * time.Second,
	}
	client := &http.Client{Transport: transport, Timeout: 60 * time.Second}
	defer transport.CloseIdleConnections()

	doQuery := func(target int32, seed uint64) (int, []byte, error) {
		body, err := json.Marshal(map[string]any{
			"graph": "load", "origin": cfg.origin, "k": cfg.k, "ttl": cfg.ttl,
			"kernel": kernel.String(), "targets": []int32{target}, "seed": seed,
		})
		if err != nil {
			return 0, nil, err
		}
		resp, err := client.Post(routerURL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		answer, err := io.ReadAll(resp.Body)
		return resp.StatusCode, answer, err
	}

	// Warm every shape's engine outside the timed window, mirroring the
	// in-process modes: each replica pays compilation once, untimed.
	for _, t := range shapeTargets {
		if code, body, err := doQuery(t, ^cfg.seed); err != nil || code != http.StatusOK {
			return fmt.Errorf("warm query failed: status %d err %v body %s", code, err, body)
		}
	}

	total := cfg.clients * cfg.queries
	answers := make([][]byte, total)
	targets := make([]int32, total)
	seeds := make([]uint64, total)
	latencies := make([]float64, total)
	var failed sync.Map
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			shape := shapeTargets[c%cfg.shapes]
			for q := 0; q < cfg.queries; q++ {
				i := c*cfg.queries + q
				targets[i], seeds[i] = shape, cfg.seed+uint64(i)
				t0 := time.Now()
				code, body, err := doQuery(targets[i], seeds[i])
				latencies[i] = float64(time.Since(t0)) / float64(time.Millisecond)
				if err != nil || code != http.StatusOK {
					failed.Store(i, fmt.Sprintf("status %d err %v", code, err))
					continue
				}
				answers[i] = body
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	nFailed := 0
	failed.Range(func(any, any) bool { nFailed++; return true })

	fleet := fmt.Sprintf("replicas=%d", cfg.replicas)
	if cfg.routerURL != "" {
		fleet = "router=" + cfg.routerURL
	}
	fmt.Fprintf(out, "cluster    %6d queries in %12v  -> %8.0f q/s   %s   (policy=%s %s shapes=%d)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(),
		latencyLine(latencies), cfg.policy, fleet, cfg.shapes)

	// Pull the router's counters and the per-replica distribution.
	if resp, err := client.Get(routerURL + "/v1/stats"); err == nil {
		var st cluster.Stats
		decErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if decErr == nil {
			fmt.Fprintf(out, "routing: failovers=%d unrouted=%d shadow_checks=%d shadow_mismatches=%d\n",
				st.Failovers, st.Unrouted, st.ShadowChecks, st.ShadowMismatches)
			for i, b := range st.Backends {
				line := fmt.Sprintf("replica %d: requests=%-6d failures=%d healthy=%v", i, b.Requests, b.Failures, b.Healthy)
				var ss httpapi.StatsResponse
				if len(b.Serve) > 0 && json.Unmarshal(b.Serve, &ss) == nil && ss.Passes > 0 {
					line += fmt.Sprintf("  passes=%-5d lanes=%-6d (%.1f lanes/pass)",
						ss.Passes, ss.Lanes, float64(ss.Lanes)/float64(ss.Passes))
				}
				fmt.Fprintln(out, line)
			}
		}
	}
	if nFailed > 0 {
		return fmt.Errorf("cluster load: %d of %d requests failed", nFailed, total)
	}

	if cfg.verify {
		eng := walk.NewEngine(g, walk.EngineOptions{Workers: 1})
		hasItem := make([]bool, g.N())
		for i := 0; i < total; i++ {
			hasItem[targets[i]] = true
			res := netsim.RunWalkQueryEngine(eng, cfg.origin, cfg.k, cfg.ttl, hasItem, seeds[i])
			hasItem[targets[i]] = false
			exp, err := json.Marshal(httpapi.QueryResponse{Found: res.Found, Rounds: res.Rounds, Messages: res.Messages})
			if err != nil {
				return err
			}
			exp = append(exp, '\n')
			if !bytes.Equal(answers[i], exp) {
				return fmt.Errorf("answer %d (target %d seed %d) differs: cluster %q, standalone %q",
					i, targets[i], seeds[i], answers[i], exp)
			}
		}
		fmt.Fprintf(out, "verify: all %d cluster answers bit-for-bit equal to standalone sequential\n", total)
	}
	return nil
}

func parseTargets(s string) ([]int32, error) {
	var out []int32
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseInt(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad target %q: %w", f, err)
		}
		out = append(out, int32(v))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("need at least one target vertex")
	}
	return out, nil
}

// run executes the load measurement; tests drive it with tiny shapes.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("walkload", flag.ContinueOnError)
	fs.SetOutput(out)
	spec := fs.String("graph", "margulis:24", "graph spec (the default is the Table-1 expander, n=576)")
	clients := fs.Int("clients", 256, "concurrent clients")
	queries := fs.Int("queries", 16, "queries per client")
	k := fs.Int("k", 1, "walkers per query")
	ttl := fs.Int("ttl", 1<<20, "per-query round budget")
	targetsFlag := fs.String("targets", "300", "target vertices, comma-separated")
	origin := fs.Int("origin", 0, "query origin vertex")
	seed := fs.Uint64("seed", 1, "base seed; query i uses seed+i")
	kernelFlag := fs.String("kernel", "uniform", kernelflag.Usage())
	mode := fs.String("mode", "both", "naive, coalesced, both (both verifies bit-for-bit equality), adaptive (time-to-tolerance), or cluster (HTTP fleet through the shape-affinity router)")
	tick := fs.Duration("tick", 200*time.Microsecond, "coalescer gather window")
	workers := fs.Int("workers", 1, "workers per grouped pass (0 = engine default)")
	trials := fs.Int("trials", 1024, "adaptive mode: fixed trial budget per estimate")
	rtol := fs.Float64("rtol", 0.05, "adaptive mode: target relative CI half-width")
	confidence := fs.Float64("confidence", 0, "adaptive mode: CI confidence level (0 = 0.95)")
	replicas := fs.Int("replicas", 3, "cluster mode: in-process walkd replicas behind the router")
	policyFlag := fs.String("policy", "affinity", "cluster mode: routing policy (affinity or roundrobin)")
	shapes := fs.Int("shapes", 8, "cluster mode: distinct request shapes in the mix")
	shadow := fs.Int("shadow", 0, "cluster mode: shadow-verify every Nth answer on a second replica (0 disables)")
	routerURL := fs.String("router", "", "cluster mode: external router URL (default spawns an in-process fleet)")
	verify := fs.Bool("verify", true, "cluster mode: check every answer against the standalone computation")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usage(err)
	}
	if *clients < 1 || *queries < 1 {
		return usage(fmt.Errorf("clients and queries must be >= 1"))
	}
	g, err := graph.ParseSpec(*spec)
	if err != nil {
		return usage(err)
	}
	kernel, err := kernelflag.Resolve(*kernelFlag, out)
	if err != nil {
		if errors.Is(err, kernelflag.ErrHelp) {
			return nil
		}
		return usage(err)
	}
	targets, err := parseTargets(*targetsFlag)
	if err != nil {
		return usage(err)
	}
	total := *clients * *queries
	switch *mode {
	case "naive", "coalesced", "both", "adaptive", "cluster":
	default:
		return usage(fmt.Errorf("unknown mode %q", *mode))
	}
	if *mode == "cluster" {
		policy, err := cluster.ParsePolicy(*policyFlag)
		if err != nil {
			return usage(err)
		}
		if *replicas < 1 || *shapes < 1 {
			return usage(fmt.Errorf("replicas and shapes must be >= 1"))
		}
		if *shadow < 0 {
			return usage(fmt.Errorf("shadow sample must be >= 0"))
		}
		fmt.Fprintf(out, "walkload: %s (n=%d) k=%d ttl=%d kernel=%s  %d clients x %d queries = %d over %d shapes\n",
			*spec, g.N(), *k, *ttl, kernel, *clients, *queries, total, *shapes)
		return runClusterLoad(out, g, kernel, clusterConfig{
			routerURL: *routerURL, replicas: *replicas, policy: policy,
			shadow: *shadow, shapes: *shapes, clients: *clients, queries: *queries,
			k: *k, ttl: *ttl, origin: int32(*origin), baseTgt: targets[0],
			seed: *seed, tick: *tick, workers: *workers, verify: *verify,
		})
	}
	if *mode == "adaptive" {
		fmt.Fprintf(out, "walkload: %s (n=%d) k=%d kernel=%s  %d adaptive cover estimates, budget %d trials, rtol %g\n",
			*spec, g.N(), *k, kernel, *clients, *trials, *rtol)
		return runAdaptiveLoad(out, g, kernel, serve.Options{Tick: *tick},
			*clients, *k, int64(*ttl), int32(*origin), *seed, *trials,
			walk.Precision{RTol: *rtol, Confidence: *confidence}, *workers)
	}
	fmt.Fprintf(out, "walkload: %s (n=%d) k=%d ttl=%d targets=%v kernel=%s  %d clients x %d queries = %d\n",
		*spec, g.N(), *k, *ttl, targets, kernel, *clients, *queries, total)

	var naive, coalesced loadResult
	runMode := func(noCoalesce bool) (loadResult, error) {
		return runLoad(g, kernel, serve.Options{Tick: *tick, NoCoalesce: noCoalesce},
			*clients, *queries, *k, *ttl, int32(*origin), targets, *seed, *workers)
	}
	if *mode == "naive" || *mode == "both" {
		if naive, err = runMode(true); err != nil {
			return err
		}
		fmt.Fprintf(out, "naive      %6d queries in %12v  -> %8.0f q/s   %s   (per-request Engine.Run)\n",
			total, naive.elapsed.Round(time.Millisecond), naive.qps(), latencyLine(naive.latencies))
	}
	if *mode == "coalesced" || *mode == "both" {
		if coalesced, err = runMode(false); err != nil {
			return err
		}
		st := coalesced.stats
		meanLanes := 0.0
		if st.Passes > 0 {
			meanLanes = float64(st.Lanes) / float64(st.Passes)
		}
		fmt.Fprintf(out, "coalesced  %6d queries in %12v  -> %8.0f q/s   %s   (%d grouped passes, mean %.0f lanes/pass)\n",
			total, coalesced.elapsed.Round(time.Millisecond), coalesced.qps(), latencyLine(coalesced.latencies), st.Passes, meanLanes)
	}
	if naive.errs+coalesced.errs > 0 {
		return fmt.Errorf("request errors: naive %d, coalesced %d", naive.errs, coalesced.errs)
	}
	if *mode == "both" {
		for i := range naive.answers {
			if naive.answers[i] != coalesced.answers[i] {
				return fmt.Errorf("answer %d differs: naive %+v, coalesced %+v", i, naive.answers[i], coalesced.answers[i])
			}
		}
		speedup := coalesced.qps() / naive.qps()
		fmt.Fprintf(out, "verify: all %d coalesced answers bit-for-bit equal to naive dispatch\n", total)
		fmt.Fprintf(out, "speedup: %.2fx\n", speedup)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "walkload:", err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}
