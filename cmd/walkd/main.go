// Command walkd is the query-serving daemon: an HTTP+JSON front end over
// internal/serve that answers random-walk queries and estimator requests
// for a set of registered graphs, coalescing concurrent same-shape requests
// into single grouped engine passes. Every answer is bit-for-bit equal to
// the standalone library call for the same request — coalescing is pure
// batching.
//
// Usage:
//
//	walkd [-addr :8371] [-graphs id=spec,...] [-tick 200us] [-deadline 30s]
//	      [-max-batch 4096] [-max-pending 65536] [-cache 8] [-naive]
//
// Endpoints:
//
//	GET  /healthz      liveness probe
//	GET  /v1/graphs    registered graphs
//	POST /v1/query     {"graph","origin","k","ttl","targets":[...],"seed","kernel"?}
//	POST /v1/hitting   {"graph","start","target","trials","seed","max_steps","kernel"?}
//	POST /v1/cover     {"graph","start","k","trials","seed","max_steps","kernel"?}
//	POST /v1/meeting   {"graph","starts":[...],"trials","seed","max_steps","kernel"?}
//	GET  /v1/stats     served-traffic counters
//
// The three estimate endpoints also accept adaptive-stopping fields:
// "rtol" > 0 switches to sequential stopping ("trials" becomes the budget
// cap), with optional "confidence" (default 0.95), "min_trials",
// "max_trials", and "wave". The answer then stops at the first wave
// boundary whose relative CI half-width is within rtol, and reports
// "waves" and "converged" alongside the usual fields. Adding
// "stream": true switches the response to chunked NDJSON: one
// {"wave","trials","mean","ci","rel_ci","truncated","converged","done"}
// progress line per wave, then a final {"result": {...}} line.
//
// The daemon enforces per-request deadlines (-deadline), admission limits
// (429 once the pending queue is full), and drains gracefully: on SIGINT or
// SIGTERM it stops accepting connections, lets in-flight requests finish,
// and flushes every queued request through a final dispatch before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"manywalks/internal/graph"
	"manywalks/internal/serve"
	"manywalks/internal/walk"
)

var errUsage = errors.New("usage error")

func usage(err error) error { return fmt.Errorf("%w: %w", errUsage, err) }

const defaultGraphs = "expander576=margulis:24,cycle1024=cycle:1024,torus1024=torus:32,barbell129=barbell:129"

// buildServer constructs a serve.Server with the graphs of a -graphs spec
// ("id=kind:params,...") registered.
func buildServer(graphSpecs string, opts serve.Options) (*serve.Server, error) {
	s := serve.NewServer(opts)
	for _, item := range strings.Split(graphSpecs, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		id, spec, ok := strings.Cut(item, "=")
		if !ok {
			s.Close()
			return nil, fmt.Errorf("graph %q: want id=spec", item)
		}
		g, err := graph.ParseSpec(spec)
		if err != nil {
			s.Close()
			return nil, err
		}
		if err := s.RegisterGraph(id, g); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// jsonError is the error envelope every failure returns.
type jsonError struct {
	Error string `json:"error"`
}

// estimateResponse is the JSON form of a walk.Estimate. waves/converged
// appear only on adaptive answers (fixed-count responses are unchanged).
type estimateResponse struct {
	Mean      float64 `json:"mean"`
	CI95      float64 `json:"ci95"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
	Trials    int     `json:"trials"`
	Truncated int     `json:"truncated"`
	Waves     int     `json:"waves,omitempty"`
	Converged bool    `json:"converged,omitempty"`
}

func estimateJSON(e walk.Estimate) estimateResponse {
	return estimateResponse{
		Mean:      e.Summary.Mean,
		CI95:      e.CI95(),
		Min:       e.Summary.Min,
		Max:       e.Summary.Max,
		Trials:    e.Summary.N,
		Truncated: e.Truncated,
		Waves:     e.Waves,
		Converged: e.Converged,
	}
}

// precisionParams are the optional adaptive-stopping fields every estimate
// endpoint accepts. rtol > 0 switches the request to sequential stopping
// (trials becomes the budget cap); stream additionally switches the
// response to chunked NDJSON per-wave progress.
type precisionParams struct {
	RTol       float64 `json:"rtol"`
	Confidence float64 `json:"confidence"`
	MinTrials  int     `json:"min_trials"`
	MaxTrials  int     `json:"max_trials"`
	Wave       int     `json:"wave"`
	Stream     bool    `json:"stream"`
}

func (p precisionParams) precision() walk.Precision {
	return walk.Precision{RTol: p.RTol, Confidence: p.Confidence,
		MinTrials: p.MinTrials, MaxTrials: p.MaxTrials, Wave: p.Wave}
}

// waveJSON is one NDJSON progress line of a streamed adaptive estimate.
type waveJSON struct {
	Wave      int     `json:"wave"`
	Trials    int     `json:"trials"`
	Mean      float64 `json:"mean"`
	CI        float64 `json:"ci"`
	RelCI     float64 `json:"rel_ci"`
	Truncated int     `json:"truncated"`
	Converged bool    `json:"converged"`
	Done      bool    `json:"done"`
}

// serveEstimate answers one estimate endpoint: plain JSON normally, or —
// for adaptive requests with "stream": true — a chunked NDJSON response of
// per-wave progress lines followed by a final {"result": ...} line (or an
// {"error": ...} line, since the 200 header is already on the wire).
func serveEstimate(w http.ResponseWriter, pp precisionParams, call func(onProgress func(walk.WaveStat)) (walk.Estimate, error)) {
	if !pp.Stream || !pp.precision().Enabled() {
		est, err := call(nil)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, estimateJSON(est))
		return
	}
	// Wave snapshots arrive on dispatcher goroutines that must not block,
	// so they pass through a buffered channel the handler drains onto the
	// wire; if the client reads slowly, intermediate snapshots are dropped
	// rather than stalling the dispatcher. The final result never drops.
	wavec := make(chan walk.WaveStat, 64)
	type outcome struct {
		est walk.Estimate
		err error
	}
	donec := make(chan outcome, 1)
	go func() {
		est, err := call(func(ws walk.WaveStat) {
			select {
			case wavec <- ws:
			default:
			}
		})
		donec <- outcome{est, err}
	}()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	writeWave := func(ws walk.WaveStat) {
		_ = enc.Encode(waveJSON{Wave: ws.Wave, Trials: ws.Trials, Mean: ws.Mean,
			CI: ws.CI, RelCI: ws.RelCI, Truncated: ws.Truncated,
			Converged: ws.Converged, Done: ws.Done})
		flush()
	}
	for {
		select {
		case ws := <-wavec:
			writeWave(ws)
		case out := <-donec:
		drained:
			for {
				select {
				case ws := <-wavec:
					writeWave(ws)
				default:
					break drained
				}
			}
			if out.err != nil {
				_ = enc.Encode(jsonError{Error: out.err.Error()})
			} else {
				_ = enc.Encode(struct {
					Result estimateResponse `json:"result"`
				}{estimateJSON(out.est)})
			}
			flush()
			return
		}
	}
}

// statusOf maps serving errors onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, serve.ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, statusOf(err), jsonError{Error: err.Error()})
}

// decodeInto parses one JSON request body with a size cap.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, jsonError{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// post wraps a handler with the method check and the per-request deadline.
func post(deadline time.Duration, fn func(ctx context.Context, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, jsonError{Error: "POST only"})
			return
		}
		ctx := r.Context()
		if deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, deadline)
			defer cancel()
		}
		fn(ctx, w, r)
	}
}

// kernelOf parses the optional "kernel" field.
func kernelOf(s string) (walk.Kernel, error) {
	if s == "" {
		return walk.Uniform(), nil
	}
	return walk.ParseKernel(s)
}

// newMux wires the JSON endpoints over srv.
func newMux(srv *serve.Server, deadline time.Duration) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("/v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Graphs())
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Stats())
	})
	mux.HandleFunc("/v1/query", post(deadline, func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req struct {
			Graph   string  `json:"graph"`
			Kernel  string  `json:"kernel"`
			Origin  int32   `json:"origin"`
			K       int     `json:"k"`
			TTL     int     `json:"ttl"`
			Targets []int32 `json:"targets"`
			Seed    uint64  `json:"seed"`
		}
		if !decodeInto(w, r, &req) {
			return
		}
		kernel, err := kernelOf(req.Kernel)
		if err != nil {
			writeErr(w, err)
			return
		}
		res, err := srv.WalkQuery(ctx, serve.WalkQueryRequest{
			Graph: req.Graph, Kernel: kernel, Origin: req.Origin, K: req.K,
			TTL: req.TTL, Targets: req.Targets, Seed: req.Seed,
		})
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"found": res.Found, "rounds": res.Rounds, "messages": res.Messages,
		})
	}))
	mux.HandleFunc("/v1/hitting", post(deadline, func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req struct {
			Graph    string `json:"graph"`
			Kernel   string `json:"kernel"`
			Start    int32  `json:"start"`
			Target   int32  `json:"target"`
			Trials   int    `json:"trials"`
			Seed     uint64 `json:"seed"`
			MaxSteps int64  `json:"max_steps"`
			precisionParams
		}
		if !decodeInto(w, r, &req) {
			return
		}
		kernel, err := kernelOf(req.Kernel)
		if err != nil {
			writeErr(w, err)
			return
		}
		serveEstimate(w, req.precisionParams, func(onProgress func(walk.WaveStat)) (walk.Estimate, error) {
			return srv.HittingTime(ctx, serve.HittingTimeRequest{
				Graph: req.Graph, Kernel: kernel, Start: req.Start, Target: req.Target,
				Trials: req.Trials, Seed: req.Seed, MaxSteps: req.MaxSteps,
				Precision: req.precision(), OnProgress: onProgress,
			})
		})
	}))
	mux.HandleFunc("/v1/cover", post(deadline, func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req struct {
			Graph    string `json:"graph"`
			Kernel   string `json:"kernel"`
			Start    int32  `json:"start"`
			K        int    `json:"k"`
			Trials   int    `json:"trials"`
			Seed     uint64 `json:"seed"`
			MaxSteps int64  `json:"max_steps"`
			precisionParams
		}
		if !decodeInto(w, r, &req) {
			return
		}
		kernel, err := kernelOf(req.Kernel)
		if err != nil {
			writeErr(w, err)
			return
		}
		serveEstimate(w, req.precisionParams, func(onProgress func(walk.WaveStat)) (walk.Estimate, error) {
			return srv.CoverTime(ctx, serve.CoverTimeRequest{
				Graph: req.Graph, Kernel: kernel, Start: req.Start, K: req.K,
				Trials: req.Trials, Seed: req.Seed, MaxSteps: req.MaxSteps,
				Precision: req.precision(), OnProgress: onProgress,
			})
		})
	}))
	mux.HandleFunc("/v1/meeting", post(deadline, func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req struct {
			Graph    string  `json:"graph"`
			Kernel   string  `json:"kernel"`
			Starts   []int32 `json:"starts"`
			Trials   int     `json:"trials"`
			Seed     uint64  `json:"seed"`
			MaxSteps int64   `json:"max_steps"`
			precisionParams
		}
		if !decodeInto(w, r, &req) {
			return
		}
		kernel, err := kernelOf(req.Kernel)
		if err != nil {
			writeErr(w, err)
			return
		}
		serveEstimate(w, req.precisionParams, func(onProgress func(walk.WaveStat)) (walk.Estimate, error) {
			return srv.MeetingTime(ctx, serve.MeetingTimeRequest{
				Graph: req.Graph, Kernel: kernel, Starts: req.Starts,
				Trials: req.Trials, Seed: req.Seed, MaxSteps: req.MaxSteps,
				Precision: req.precision(), OnProgress: onProgress,
			})
		})
	}))
	return mux
}

// run starts the daemon and blocks until a termination signal or listener
// failure; tests drive buildServer/newMux directly instead.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("walkd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8371", "listen address")
	graphs := fs.String("graphs", defaultGraphs, "registered graphs, id=spec,... (specs: cycle:n, torus:s, margulis:m, barbell:n, ...)")
	tick := fs.Duration("tick", 200*time.Microsecond, "coalescer gather window")
	deadline := fs.Duration("deadline", 30*time.Second, "per-request deadline (0 disables)")
	maxBatch := fs.Int("max-batch", 4096, "max lanes per grouped pass per shape")
	maxPending := fs.Int("max-pending", 1<<16, "max queued lanes before 429")
	cache := fs.Int("cache", 8, "compiled-engine cache size (graph × kernel, LRU)")
	workers := fs.Int("workers", 0, "workers per grouped pass (0 = engine default)")
	naive := fs.Bool("naive", false, "disable coalescing: serve each request with its own engine run")
	drainWait := fs.Duration("drain", 10*time.Second, "graceful shutdown budget for in-flight HTTP requests")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usage(err)
	}
	srv, err := buildServer(*graphs, serve.Options{
		Tick:        *tick,
		MaxBatch:    *maxBatch,
		MaxPending:  *maxPending,
		EngineCache: *cache,
		Workers:     *workers,
		NoCoalesce:  *naive,
	})
	if err != nil {
		return usage(err)
	}
	defer srv.Close() // final coalescer drain after the HTTP server stops

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           newMux(srv, *deadline),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintln(out, "walkd: draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()
	for _, gi := range srv.Graphs() {
		fmt.Fprintf(out, "walkd: graph %-12s n=%-6d m=%d\n", gi.ID, gi.N, gi.M)
	}
	fmt.Fprintf(out, "walkd: listening on %s\n", ln.Addr())
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(out, "walkd: served %d requests (%d grouped passes, %d lanes, %d naive)\n",
		st.Requests, st.Passes, st.Lanes, st.Naive)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "walkd:", err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}
