// Command walkd is the query-serving daemon: an HTTP+JSON front end over
// internal/serve that answers random-walk queries and estimator requests
// for a set of registered graphs, coalescing concurrent same-shape requests
// into single grouped engine passes. Every answer is bit-for-bit equal to
// the standalone library call for the same request — coalescing is pure
// batching. The endpoint mux itself lives in internal/httpapi (shared with
// the cluster router's backends); walkd adds flags, the listener, and
// graceful drain.
//
// Usage:
//
//	walkd [-addr :8371] [-graphs id=spec,...] [-tick 200us] [-deadline 30s]
//	      [-max-batch 4096] [-max-pending 65536] [-cache 8] [-naive]
//	      [-warm kernel,...]
//
// Endpoints: see internal/httpapi. /v1/stats reports the served-traffic
// counters, the engine-cache hit/miss counters, and per-shape pass/lane
// rows (the batching observability a cluster load report aggregates).
//
// The daemon enforces per-request deadlines (-deadline), admission limits
// (429 once the pending queue is full), and drains gracefully: on SIGINT or
// SIGTERM it stops accepting connections, lets in-flight requests finish,
// and flushes every queued request through a final dispatch before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"manywalks/internal/httpapi"
	"manywalks/internal/kernelflag"
	"manywalks/internal/serve"
)

var errUsage = errors.New("usage error")

func usage(err error) error { return fmt.Errorf("%w: %w", errUsage, err) }

const defaultGraphs = "expander576=margulis:24,cycle1024=cycle:1024,torus1024=torus:32,barbell129=barbell:129"

// run starts the daemon and blocks until a termination signal or listener
// failure; tests drive httpapi.BuildServer/NewMux directly instead.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("walkd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8371", "listen address")
	graphs := fs.String("graphs", defaultGraphs, "registered graphs, id=spec,... (specs: cycle:n, torus:s, margulis:m, barbell:n, ...)")
	tick := fs.Duration("tick", 200*time.Microsecond, "coalescer gather window")
	deadline := fs.Duration("deadline", 30*time.Second, "per-request deadline (0 disables)")
	maxBatch := fs.Int("max-batch", 4096, "max lanes per grouped pass per shape")
	maxPending := fs.Int("max-pending", 1<<16, "max queued lanes before 429")
	cache := fs.Int("cache", 8, "compiled-engine cache size (graph × kernel, LRU)")
	workers := fs.Int("workers", 0, "workers per grouped pass (0 = engine default)")
	naive := fs.Bool("naive", false, "disable coalescing: serve each request with its own engine run")
	warm := fs.String("warm", "", "pre-compile engines at startup: comma-separated kernels, each warmed on every registered graph (\"help\" lists kernels)")
	drainWait := fs.Duration("drain", 10*time.Second, "graceful shutdown budget for in-flight HTTP requests")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usage(err)
	}
	srv, err := httpapi.BuildServer(*graphs, serve.Options{
		Tick:        *tick,
		MaxBatch:    *maxBatch,
		MaxPending:  *maxPending,
		EngineCache: *cache,
		Workers:     *workers,
		NoCoalesce:  *naive,
	})
	if err != nil {
		return usage(err)
	}
	defer srv.Close() // final coalescer drain after the HTTP server stops

	// Warm listed kernels on every graph before accepting traffic, so the
	// first request of each shape pays no compile. A kernel a graph rejects
	// (e.g. a dense hopper bank over the memory cap) is reported and
	// skipped — the other graphs still warm.
	for _, spec := range strings.Split(*warm, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		kern, err := kernelflag.Resolve(spec, out)
		if err != nil {
			if errors.Is(err, kernelflag.ErrHelp) {
				return nil
			}
			return usage(err)
		}
		for _, gi := range srv.Graphs() {
			if err := srv.Warm(gi.ID, kern); err != nil {
				fmt.Fprintf(out, "walkd: warm %s on %s skipped: %v\n", kern, gi.ID, err)
				continue
			}
			fmt.Fprintf(out, "walkd: warmed %s on %s\n", kern, gi.ID)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           httpapi.NewMux(srv, *deadline),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintln(out, "walkd: draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()
	for _, gi := range srv.Graphs() {
		fmt.Fprintf(out, "walkd: graph %-12s n=%-6d m=%d\n", gi.ID, gi.N, gi.M)
	}
	fmt.Fprintf(out, "walkd: listening on %s\n", ln.Addr())
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(out, "walkd: served %d requests (%d grouped passes, %d lanes, %d naive)\n",
		st.Requests, st.Passes, st.Lanes, st.Naive)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "walkd:", err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}
