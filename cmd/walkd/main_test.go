package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"manywalks/internal/graph"
	"manywalks/internal/httpapi"
	"manywalks/internal/netsim"
	"manywalks/internal/serve"
	"manywalks/internal/walk"
)

// newTestDaemon spins the daemon's HTTP stack over a small graph set.
func newTestDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := httpapi.BuildServer("exp64=margulis:8,cycle32=cycle:32", serve.Options{Tick: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.NewMux(srv, 10*time.Second))
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestDaemonEndToEnd drives concurrent HTTP clients through /v1/query and
// /v1/hitting and pins every answer against the standalone library calls.
func TestDaemonEndToEnd(t *testing.T) {
	ts := newTestDaemon(t)
	g := graph.MargulisExpander(8)
	eng := walk.NewEngine(g, walk.EngineOptions{Workers: 1})
	hasItem := make([]bool, g.N())
	hasItem[40] = true

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for seed := uint64(0); seed < 16; seed++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			var got struct {
				Found    bool  `json:"found"`
				Rounds   int   `json:"rounds"`
				Messages int64 `json:"messages"`
			}
			code := postJSON(t, ts.URL+"/v1/query", map[string]any{
				"graph": "exp64", "origin": 3, "k": 2, "ttl": 4096,
				"targets": []int32{40}, "seed": seed,
			}, &got)
			if code != http.StatusOK {
				errs <- "query status"
				return
			}
			want := netsim.RunWalkQueryEngine(eng, 3, 2, 4096, hasItem, seed)
			if got.Found != want.Found || got.Rounds != want.Rounds || got.Messages != want.Messages {
				errs <- "query mismatch"
			}
		}(seed)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	var est struct {
		Mean      float64 `json:"mean"`
		Trials    int     `json:"trials"`
		Truncated int     `json:"truncated"`
	}
	code := postJSON(t, ts.URL+"/v1/hitting", map[string]any{
		"graph": "exp64", "start": 0, "target": 33, "trials": 10, "seed": 5, "max_steps": 1 << 16,
	}, &est)
	if code != http.StatusOK {
		t.Fatalf("hitting status %d", code)
	}
	want, err := walk.EstimateHittingTime(g, 0, 33, walk.MCOptions{Trials: 10, Workers: 1, Seed: 5, MaxSteps: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean != want.Summary.Mean || est.Trials != 10 || est.Truncated != want.Truncated {
		t.Fatalf("hitting mismatch: got %+v want %+v", est, want)
	}
}

// TestDaemonAdaptiveEstimate pins the adaptive JSON path: an rtol request
// answers the standalone adaptive estimator bit-for-bit and reports its
// wave accounting.
func TestDaemonAdaptiveEstimate(t *testing.T) {
	ts := newTestDaemon(t)
	g := graph.MargulisExpander(8)
	prec := walk.Precision{RTol: 0.2, MinTrials: 24, Wave: 16}
	want, err := walk.EstimateKCoverTime(g, 1, 4, walk.MCOptions{
		Trials: 1024, Workers: 1, Seed: 13, MaxSteps: 1 << 16, Precision: prec})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Converged || want.Summary.N >= 1024 {
		t.Fatalf("reference run must converge early, got %+v", want)
	}
	var est httpapi.EstimateResponse
	code := postJSON(t, ts.URL+"/v1/cover", map[string]any{
		"graph": "exp64", "start": 1, "k": 4, "trials": 1024, "seed": 13, "max_steps": 1 << 16,
		"rtol": 0.2, "min_trials": 24, "wave": 16,
	}, &est)
	if code != http.StatusOK {
		t.Fatalf("adaptive cover status %d", code)
	}
	if est.Mean != want.Summary.Mean || est.Trials != want.Summary.N ||
		est.Waves != want.Waves || !est.Converged {
		t.Fatalf("adaptive cover mismatch: got %+v want %+v", est, want)
	}
}

// TestDaemonAdaptiveStream pins the chunked NDJSON progress stream: one
// well-formed line per wave (contiguous indices, growing trials, done only
// last), then a final result line matching the standalone adaptive run.
func TestDaemonAdaptiveStream(t *testing.T) {
	ts := newTestDaemon(t)
	g := graph.MargulisExpander(8)
	prec := walk.Precision{RTol: 0.2, MinTrials: 24, Wave: 16}
	want, err := walk.EstimateHittingTime(g, 0, 33, walk.MCOptions{
		Trials: 1024, Workers: 1, Seed: 7, MaxSteps: 1 << 16, Precision: prec})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"graph": "exp64", "start": 0, "target": 33, "trials": 1024, "seed": 7, "max_steps": 1 << 16,
		"rtol": 0.2, "min_trials": 24, "wave": 16, "stream": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/hitting", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var waves []httpapi.WaveLine
	var result *httpapi.EstimateResponse
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var line struct {
			httpapi.WaveLine
			Result *httpapi.EstimateResponse `json:"result"`
			Error  string                    `json:"error"`
		}
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		if line.Error != "" {
			t.Fatalf("stream error line: %s", line.Error)
		}
		if line.Result != nil {
			result = line.Result
			continue
		}
		waves = append(waves, line.WaveLine)
	}
	if result == nil {
		t.Fatal("stream ended without a result line")
	}
	if len(waves) != want.Waves || len(waves) < 2 {
		t.Fatalf("got %d wave lines, want %d", len(waves), want.Waves)
	}
	for i, ws := range waves {
		if ws.Wave != i {
			t.Fatalf("wave line %d has index %d", i, ws.Wave)
		}
		if i > 0 && ws.Trials <= waves[i-1].Trials {
			t.Fatalf("wave %d trials %d not increasing", i, ws.Trials)
		}
		if got, wantDone := ws.Done, i == len(waves)-1; got != wantDone {
			t.Fatalf("wave %d done=%v", i, got)
		}
	}
	if result.Mean != want.Summary.Mean || result.Trials != want.Summary.N ||
		result.Waves != want.Waves || result.Converged != want.Converged {
		t.Fatalf("stream result %+v != standalone %+v", result, want)
	}
}

// TestDaemonStatusCodes pins the HTTP error mapping.
func TestDaemonStatusCodes(t *testing.T) {
	ts := newTestDaemon(t)
	if code := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"graph": "nope", "origin": 0, "k": 1, "ttl": 8,
	}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"graph": "cycle32", "origin": 0, "k": 0, "ttl": 8,
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad k: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on query: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var graphs []serve.GraphInfo
	resp, err = http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&graphs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(graphs) != 2 || graphs[0].ID != "cycle32" || graphs[1].N != 64 {
		t.Fatalf("graph listing: %+v", graphs)
	}
}

// TestBuildServerErrors pins the -graphs spec validation.
func TestBuildServerErrors(t *testing.T) {
	for _, bad := range []string{"noequals", "x=unknown:3", "x=cycle:zero", "x=cycle:2", "x=barbell:8"} {
		if _, err := httpapi.BuildServer(bad, serve.Options{}); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
	s, err := httpapi.BuildServer(defaultGraphs, serve.Options{})
	if err != nil {
		t.Fatalf("default graphs: %v", err)
	}
	if n := len(s.Graphs()); n != 4 {
		t.Fatalf("default graphs registered %d", n)
	}
	s.Close()
}

// TestRunUsage covers the flag path of run.
func TestRunUsage(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil || !strings.Contains(out.String(), "-addr") {
		t.Fatalf("-h must print usage, got %v", err)
	}
	if err := run([]string{"-graphs", "broken"}, &out); err == nil {
		t.Fatal("bad -graphs accepted")
	}
}

// TestDaemonStatsEndpoint pins the /v1/stats wire format: the traffic and
// engine-cache counters plus the per-shape batching rows the cluster load
// report consumes.
func TestDaemonStatsEndpoint(t *testing.T) {
	ts := newTestDaemon(t)
	for seed := uint64(0); seed < 4; seed++ {
		if code := postJSON(t, ts.URL+"/v1/query", map[string]any{
			"graph": "exp64", "origin": 3, "k": 2, "ttl": 4096,
			"targets": []int32{40}, "seed": seed,
		}, nil); code != http.StatusOK {
			t.Fatalf("query status %d", code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st httpapi.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 4 || st.Lanes != 4 {
		t.Fatalf("stats %+v, want 4 requests / 4 lanes", st.Stats)
	}
	if st.EngineMisses != 1 || st.EngineHits < 1 {
		t.Fatalf("engine counters %+v, want 1 miss and >=1 hits", st.Stats)
	}
	if len(st.Shapes) != 1 || st.Shapes[0].Class != "hit" || st.Shapes[0].Lanes != 4 ||
		st.Shapes[0].Graph != "exp64" || st.Shapes[0].LanesPerPass <= 0 {
		t.Fatalf("shape rows %+v", st.Shapes)
	}
}

// TestDaemonStatsCanonicalKernel pins the per-shape stats spelling: a
// request carrying a shorthand kernel string ("hopper:power") must report
// under the canonical registry spelling ("hopper:power:1"), never the raw
// request text — the spelling the cluster router keys its ring on.
func TestDaemonStatsCanonicalKernel(t *testing.T) {
	ts := newTestDaemon(t)
	var est httpapi.EstimateResponse
	code := postJSON(t, ts.URL+"/v1/cover", map[string]any{
		"graph": "cycle32", "kernel": "hopper:power", "start": 0, "k": 4,
		"trials": 6, "seed": 3, "max_steps": 1 << 16,
	}, &est)
	if code != http.StatusOK {
		t.Fatalf("hopper cover status %d", code)
	}
	kern, err := walk.ParseKernel("hopper:power:1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := walk.EstimateKernelKCoverTime(graph.Cycle(32), kern, 0, 4,
		walk.MCOptions{Trials: 6, Workers: 1, Seed: 3, MaxSteps: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean != want.Summary.Mean || est.Trials != 6 {
		t.Fatalf("served hopper cover %+v != standalone %+v", est, want)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st httpapi.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shapes) != 1 {
		t.Fatalf("shape rows %+v", st.Shapes)
	}
	if got := st.Shapes[0].Kernel; got != "hopper:power:1" {
		t.Fatalf("stats report kernel %q, want canonical %q", got, "hopper:power:1")
	}
}
