// Command bounds prints the exact single-walk quantities the paper's
// theorems are stated in: extreme hitting times, the Matthews cover-time
// sandwich, the spectral gap, and the paper-definition mixing time.
//
// Usage:
//
//	bounds -graph expander -n 256 [-mixbudget T] [-seed S]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"manywalks"
)

func buildGraph(kind string, n int, r *manywalks.Rand) (*manywalks.Graph, int32, error) {
	switch kind {
	case "cycle":
		return manywalks.NewCycle(n), 0, nil
	case "complete":
		return manywalks.NewComplete(n, false), 0, nil
	case "torus2d":
		side := int(math.Round(math.Sqrt(float64(n))))
		return manywalks.NewTorus2D(side), 0, nil
	case "hypercube":
		dim := int(math.Round(math.Log2(float64(n))))
		return manywalks.NewHypercube(dim), 0, nil
	case "expander":
		m := int(math.Round(math.Sqrt(float64(n))))
		return manywalks.NewMargulisExpander(m), 0, nil
	case "tree":
		height := int(math.Round(math.Log2(float64(n+1)))) - 1
		if height < 1 {
			height = 1
		}
		return manywalks.NewBalancedTree(2, height), 0, nil
	case "barbell":
		if n%2 == 0 {
			n++
		}
		g, c := manywalks.NewBarbell(n)
		return g, c, nil
	case "er":
		p := 3 * math.Log(float64(n)) / float64(n)
		g, err := manywalks.NewConnectedErdosRenyi(n, p, r, 50)
		return g, 0, err
	default:
		return nil, 0, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func main() {
	kind := flag.String("graph", "expander", "graph family")
	n := flag.Int("n", 256, "approximate vertex count")
	mixBudget := flag.Int("mixbudget", 0, "mixing-time step budget (0 = auto)")
	seed := flag.Uint64("seed", 20080614, "RNG seed")
	flag.Parse()

	r := manywalks.NewRand(*seed)
	g, _, err := buildGraph(*kind, *n, r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	budget := *mixBudget
	if budget == 0 {
		budget = 20 * g.N() * g.N()
	}
	b, err := manywalks.ComputeBounds(g, budget, r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s  n=%d m=%d\n", g.Name(), g.N(), g.M())
	fmt.Printf("hmax            = %.6g\n", b.Hmax)
	fmt.Printf("hmin            = %.6g\n", b.Hmin)
	fmt.Printf("Matthews lower  = %.6g  (hmin·H_{n-1})\n", b.MatthewsLower)
	fmt.Printf("Matthews upper  = %.6g  (hmax·H_n)\n", b.MatthewsUpper)
	fmt.Printf("Aleliunas       = %.6g  (2m(n-1), universal)\n", b.Aleliunas)
	fmt.Printf("lambda          = %.6f  (second eigenvalue magnitude)\n", b.Lambda)
	fmt.Printf("spectral gap    = %.6f\n", b.SpectralGap)
	if b.MixingTime >= 0 {
		lazy := ""
		if b.LazyMixing {
			lazy = " (lazy walk; graph is bipartite)"
		}
		fmt.Printf("mixing time t_m = %d%s\n", b.MixingTime, lazy)
	} else {
		fmt.Printf("mixing time t_m = not reached within %d steps\n", budget)
	}
	for _, k := range []int{2, 4, 8, 16} {
		fmt.Printf("Baby Matthews bound (Thm 13) k=%-3d: %.6g\n", k, b.BabyMatthewsBound(k))
	}
}
