// Package manywalks is a from-scratch Go reproduction of
//
//	Alon, Avin, Koucký, Kozma, Lotker, Tuttle.
//	"Many Random Walks Are Faster Than One." SPAA 2008.
//
// The paper asks how much faster k independent random walks, started from a
// common vertex, cover a graph than a single walk does, and answers with a
// taxonomy: linear speed-up on cliques, expanders, grids, hypercubes and
// random graphs (for k up to log n, or up to n on expanders and cliques),
// only logarithmic speed-up on the cycle, and an exponential speed-up on the
// barbell graph when starting at its center.
//
// This package is the public face of the reproduction. It re-exports the
// graph generators for every family the paper evaluates, Monte Carlo
// estimators for single-walk and k-walk cover times with confidence
// intervals, exact hitting-time/Matthews-bound machinery, mixing-time
// computation under the paper's definition, and the speed-up measurement and
// regime classification that regenerate the paper's Table 1.
//
// # Quick start
//
//	g := manywalks.NewTorus2D(32)                  // √n × √n torus, n = 1024
//	opts := manywalks.MCOptions{Trials: 200, Seed: 1, MaxSteps: 1 << 24}
//	point, err := manywalks.Speedup(g, 0, 8, opts) // S^8(G)
//	if err != nil { ... }
//	fmt.Printf("S^8 = %.1f (C=%s, C^8=%s)\n",
//		point.Speedup, point.Single.Summary, point.Multi.Summary)
//
// # The batched k-walk engine
//
// The hot path under every estimate is Engine, a batched simulator of the
// paper's synchronized k-walk. Instead of advancing one pointer-chasing
// Walker at a time, the engine keeps walker positions in a flat []int32,
// gives walker i the deterministic RNG stream (seed, i), and advances the
// whole array in vectorized rounds over the graph's CSR adjacency —
// sharded across a worker pool and synchronized at batch barriers. Results
// are bit-for-bit reproducible: for a fixed (graph, starts, seed, budget)
// every option configuration returns the identical answer, and the engine
// beats the legacy per-walker loop by ≥2x on the paper's families.
//
//	eng := manywalks.NewEngine(g, manywalks.EngineOptions{})
//	res := eng.KCoverFrom(0, 64, seed, 1<<30)      // C^64 sample, in rounds
//	hit := eng.KHit(starts, marked, seed, ttl)     // first marked vertex
//	first := eng.KFirstVisits(starts, seed, 1<<20) // per-vertex first visits
//
// One Engine per graph is the intended shape: it is immutable, safe for
// concurrent use, and pools its per-run state, so Monte Carlo loops issue
// thousands of runs against a single instance (RunKWalk is the
// convenience one-shot form). The Monte Carlo estimators (CoverTime,
// KCoverTime, HittingTime, PartialCoverTime, ...) all run on the engine
// internally — and their trials are *fused*: every trial's walkers step
// together as lanes of one wide engine pass, finished trials retire at
// merge barriers so the heavy tail of slow trials costs only its own
// rounds, and each per-trial sample stays bit-for-bit identical to a
// sequential run of that trial. Single-walker estimators (hitting times,
// k = 1 cover) gain the most — fusing their trials turns a latency-bound
// chain of dependent steps into a throughput-bound batched pass,
// measured 2-3x faster end to end.
//
// The engine has one run core and pluggable lenses: Engine.Run executes a
// RunSpec (starts, seed, round budget, stop condition) against a set of
// Observers — cover bitset (NewCoverObserver), partial-cover thresholds
// (NewPartialCoverObserver), first-visit log (NewFirstVisitObserver),
// target-set hit (NewHitObserver, NewTargetSetObserver), and pairwise
// meeting/pursuit/coalescence detection (NewMeetingObserver,
// NewPursuitObserver, NewCoalescenceObserver). Observers see the walk
// through shard-private scan hooks and exact round-ordered merges at the
// batch barriers, so every observable inherits the determinism guarantee;
// stop conditions (StopWhenAll, StopWhenAny, RunToHorizon) combine
// observers into one run. KCover, KHit, KHitTargets, PartialCoverCurve,
// KMeetingTime and KCoalescenceTime are thin wrappers over this core, and
// the estimators KMeetingTime/KCoalescenceTime/PartialCoverRounds give the
// Monte Carlo view.
//
// Every estimator can also stop adaptively: setting MCOptions.Precision
// (Precision{RTol: 0.05} for a 5% relative CI at 95% confidence) runs the
// same deterministic trial schedule in waves and stops at the first wave
// boundary within tolerance — typically 3-4x fewer trials than a fixed
// budget on concentrated observables, with the early-stopped answer still
// bit-for-bit reproducible (the adaptive samples are a prefix of the
// fixed schedule, and the stop wave is a pure function of them). The
// Estimate reports Waves and Converged; the zero Precision keeps the
// fixed-count path unchanged.
//
// The step law is an open interface: Kernel values name a transition law
// (Name/String/Validate/TransitionProbs/Support) and EngineOptions.Kernel
// accepts any of them — nil means the uniform walk. Built-ins cover the
// lazy walk LazyKernel(α), edge-weight-proportional steps (WeightedKernel,
// on graphs built with GraphBuilder.AddWeightedEdge or Reweight),
// non-backtracking steps, the Metropolis chain with uniform target, and
// the long-range multi-hoppers HopperPowerKernel(s) / HopperExpKernel(λ)
// that jump by BFS distance. New families register with RegisterKernel and
// parse through ParseKernel (KernelHelp lists the registry; every
// Kernel.String() re-parses to an equal kernel, so caches and cluster
// routing key on the canonical spelling). The engine compiles the kernel
// at construction — sparse-support laws into CSR-shaped alias tables,
// dense-support laws into a capped row bank whose footprint
// PlanKernelTable reports before any memory is committed; every kernel
// keeps the bit-for-bit determinism guarantee, and the Kernel* estimators
// (KernelCoverTime, KernelKCoverTime, KernelHittingTime, KernelSpeedup)
// expose the same Monte Carlo machinery per kernel, cross-validated
// against the exact chain path (NewMarkovChainForKernel,
// ExactKernelCoverTime).
//
// For serving workloads, NewServer returns an in-process query server: it
// registers graphs, caches compiled engines (LRU by graph × kernel), and
// coalesces concurrent same-shape requests — WalkQuery, HittingTime,
// CoverTime, MeetingTime — into single grouped engine passes, with every
// served answer bit-for-bit equal to the standalone call for the same
// request. Estimate requests carry the same Precision knob, dispatched
// wave by wave so converged requests release capacity early, with
// WaveStat progress streamed through OnProgress. cmd/walkd is its
// HTTP+JSON daemon (adaptive requests stream waves as chunked NDJSON)
// and cmd/walkload the coalesced-vs-naive load generator.
//
// The full experiment suite — every table, figure and theorem check — lives
// in the cmd/ binaries (cmd/table1, cmd/barbell, cmd/experiments, ...) and
// in the benchmarks at the repository root; ARCHITECTURE.md documents the
// layer structure, the time-vs-rounds conventions, and the engine's
// determinism guarantees.
package manywalks
