// Benchmarks for the extension experiments (DESIGN.md second wave): the
// Theorem 24 lower bound, partial cover, the lollipop worst case, the extra
// Theorem 4 families, churn robustness, coverage profiles and the network
// search trade-off.
package manywalks_test

import (
	"testing"

	"manywalks"
	"manywalks/internal/harness"
)

// BenchmarkThm24GridLowerBound validates the torus projection bound (E-thm24).
func BenchmarkThm24GridLowerBound(b *testing.B) {
	runReport(b, harness.RunTheorem24GridLowerBound)
}

// BenchmarkThm14Bound validates Theorem 14's cover+hitting bound and
// Corollary 15's near-linear speed-up (E-thm14).
func BenchmarkThm14Bound(b *testing.B) {
	runReport(b, harness.RunTheorem14Bound)
}

// BenchmarkConj11SpeedupFloor probes Conjecture 11's Ω(log k) floor (E-conj11).
func BenchmarkConj11SpeedupFloor(b *testing.B) {
	runReport(b, harness.RunConjecture11Probe)
}

// BenchmarkPartialCoverTail measures the cover-time tail structure (E-partial).
func BenchmarkPartialCoverTail(b *testing.B) {
	runReport(b, harness.RunPartialCoverTail)
}

// BenchmarkLollipopWorstCase measures the Θ(n³) lollipop growth (E-lollipop).
func BenchmarkLollipopWorstCase(b *testing.B) {
	runReport(b, harness.RunLollipopWorstCase)
}

// BenchmarkExtraFamilies covers trees, RGG and random regular graphs
// (E-families).
func BenchmarkExtraFamilies(b *testing.B) {
	runReport(b, harness.RunExtraFamilies)
}

// BenchmarkCoverageProfile reports the coverage-vs-time curves (E-profile).
func BenchmarkCoverageProfile(b *testing.B) {
	runReport(b, harness.RunCoverageProfile)
}

// BenchmarkSearchTradeoff runs the netsim latency/bandwidth table (E-search).
func BenchmarkSearchTradeoff(b *testing.B) {
	runReport(b, harness.RunSearchTradeoff)
}

// BenchmarkChurnRobustness measures cover under topology churn (A-churn).
func BenchmarkChurnRobustness(b *testing.B) {
	runReport(b, harness.RunChurnRobustness)
}

// BenchmarkAblationNonBacktracking compares simple and non-backtracking
// k-walk cover times (A-nbrw).
func BenchmarkAblationNonBacktracking(b *testing.B) {
	runReport(b, harness.RunAblationNonBacktracking)
}

// Engine micro-benchmarks for the extension substrates.

func BenchmarkEffectiveResistanceCG4096(b *testing.B) {
	g := manywalks.NewTorus2D(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := manywalks.EffectiveResistanceCG(g, 0, int32(g.N()/2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMembershipSampling(b *testing.B) {
	g := manywalks.NewMargulisExpander(16)
	r := manywalks.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		manywalks.RunMembershipSampling(g, 0, 100, 32, r)
	}
}

func BenchmarkChurnedKCover(b *testing.B) {
	g := manywalks.NewTorus2D(16)
	opts := manywalks.MCOptions{Trials: 8, Seed: 1, MaxSteps: 1 << 22, Workers: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i + 1)
		if _, err := manywalks.KCoverTimeUnderChurn(g, 0, 8, manywalks.SwapChurner{SwapsPerRound: 4}, opts); err != nil {
			b.Fatal(err)
		}
	}
}
