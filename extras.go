package manywalks

import (
	"io"

	"manywalks/internal/dynamic"
	"manywalks/internal/exact"
	"manywalks/internal/graph"
	"manywalks/internal/markov"
	"manywalks/internal/netsim"
	"manywalks/internal/walk"
)

// Graph operations.

// CartesianProduct returns G □ H (e.g. Torus2D(s) = Cycle(s) □ Cycle(s)).
func CartesianProduct(g, h *Graph) *Graph { return graph.CartesianProduct(g, h) }

// DisjointUnion returns G ⊔ H with H's vertices shifted by G.N().
func DisjointUnion(g, h *Graph) *Graph { return graph.DisjointUnion(g, h) }

// WithSelfLoops returns a copy of g with a self-loop at every vertex.
func WithSelfLoops(g *Graph) *Graph { return graph.WithSelfLoops(g) }

// Subgraph returns the induced subgraph on vertices plus the relabel map.
func Subgraph(g *Graph, vertices []int32) (*Graph, map[int32]int32) {
	return graph.Subgraph(g, vertices)
}

// NewWheel returns the wheel graph (hub + rim cycle).
func NewWheel(n int) *Graph { return graph.Wheel(n) }

// NewCompleteBipartite returns K_{a,b}.
func NewCompleteBipartite(a, b int) *Graph { return graph.CompleteBipartite(a, b) }

// Serialization. The write-side methods live on Graph itself
// (WriteEdgeList, WriteBinary, WriteDOT).

// ReadEdgeList parses the text edge-list format produced by
// Graph.WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// ReadBinary parses the binary format produced by Graph.WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// Additional walk observables.

// PartialCoverTime estimates the expected time for a k-walk from start to
// visit a fraction alpha of the vertices.
func PartialCoverTime(g *Graph, start int32, k int, alpha float64, opts MCOptions) (Estimate, error) {
	return walk.EstimatePartialCoverTime(g, start, k, alpha, opts)
}

// MeetingTime estimates the expected round at which two independent walks
// from u and v first co-locate (the pursuit primitive of the paper's
// introduction). On bipartite graphs, starts on opposite sides never meet.
func MeetingTime(g *Graph, u, v int32, opts MCOptions) (Estimate, error) {
	return walk.EstimateMeetingTime(g, u, v, opts)
}

// CoverageProfile returns the mean number of distinct vertices visited by a
// k-walk after each round up to horizon, averaged over opts.Trials trials.
func CoverageProfile(g *Graph, start int32, k int, horizon int64, opts MCOptions) ([]float64, error) {
	return walk.MeanCoverageProfile(g, start, k, horizon, opts)
}

// Exact extras.

// KemenyConstant returns Σ_v π(v)h(u,v), independent of u.
func KemenyConstant(g *Graph, ht *HittingTimes) float64 {
	return exact.KemenyConstant(g, ht)
}

// ExpectedReturnTime returns 1/π(v).
func ExpectedReturnTime(g *Graph, v int32) float64 { return exact.ExpectedReturnTime(g, v) }

// EffectiveResistance returns the unit-resistor effective resistance
// between u and v (dense solver, O(n³)).
func EffectiveResistance(g *Graph, u, v int32) (float64, error) {
	return exact.EffectiveResistance(g, u, v)
}

// EffectiveResistanceCG is the matrix-free conjugate-gradient variant,
// usable far beyond the dense solver's size limit.
func EffectiveResistanceCG(g *Graph, u, v int32) (float64, error) {
	return exact.EffectiveResistanceCG(g, u, v)
}

// AleliunasBound returns the universal cover-time bound 2m(n−1) of
// Aleliunas et al. (the paper's reference [5]).
func AleliunasBound(g *Graph) float64 { return exact.AleliunasBound(g) }

// Dynamic graphs.

// MutableGraph is an editable topology for churn simulations.
type MutableGraph = dynamic.MutableGraph

// NewMutableGraph copies a static graph into mutable form.
func NewMutableGraph(g *Graph) *MutableGraph { return dynamic.FromGraph(g) }

// Churner mutates a topology between k-walk rounds.
type Churner = dynamic.Churner

// SwapChurner performs degree-preserving double-edge swaps each round.
type SwapChurner = dynamic.SwapChurner

// NopChurner leaves the topology unchanged (static control).
type NopChurner = dynamic.NopChurner

// KCoverTimeUnderChurn estimates the k-walk cover time while the churner
// rewires the topology once per round.
func KCoverTimeUnderChurn(g *Graph, start int32, k int, churner Churner, opts MCOptions) (Estimate, error) {
	return dynamic.EstimateKCoverUnderChurn(g, start, k, churner, opts)
}

// Network simulation (the paper's distributed-systems motivation).

// Network is a synchronous message-passing network over a graph topology.
type Network = netsim.Network

// NetMessage is an in-flight protocol message.
type NetMessage = netsim.Message

// NetHandler implements protocol logic for network nodes.
type NetHandler = netsim.Handler

// NewNetwork returns a network over topology g driven by handler.
func NewNetwork(g *Graph, handler NetHandler, r *Rand) *Network {
	return netsim.New(g, handler, r)
}

// QueryResult summarizes a simulated search execution.
type QueryResult = netsim.QueryResult

// RunWalkQuery searches for an item with k random-walk tokens of the given
// TTL and reports latency and message cost.
func RunWalkQuery(g *Graph, origin int32, k, ttl int, hasItem []bool, r *Rand) QueryResult {
	return netsim.RunWalkQuery(g, origin, k, ttl, hasItem, r)
}

// RunWalkQueryEngine answers the walk query on a caller-held engine — the
// per-request dispatch the serving layer's coalescer is benchmarked
// against. Determinism comes from the engine's per-walker streams under
// seed; an isolated origin returns a no-progress result.
func RunWalkQueryEngine(eng *Engine, origin int32, k, ttl int, hasItem []bool, seed uint64) QueryResult {
	return netsim.RunWalkQueryEngine(eng, origin, k, ttl, hasItem, seed)
}

// RunFloodQuery searches by TTL-bounded flooding.
func RunFloodQuery(g *Graph, origin int32, ttl int, hasItem []bool, r *Rand) QueryResult {
	return netsim.RunFloodQuery(g, origin, ttl, hasItem, r)
}

// RunMembershipSampling draws count ≈stationary peer samples via random
// walks of length walkLen (RaWMS-style membership sampling).
func RunMembershipSampling(g *Graph, origin int32, count, walkLen int, r *Rand) []int32 {
	return netsim.RunMembershipSampling(g, origin, count, walkLen, r)
}

// Non-backtracking walks (the "one bit of memory" ablation).

// NBWalker is a non-backtracking random walker.
type NBWalker = walk.NBWalker

// NewNBWalker places a non-backtracking walker at start.
func NewNBWalker(g *Graph, start int32, r *Rand) *NBWalker {
	return walk.NewNBWalker(g, start, r)
}

// NBCoverTime estimates the expected cover time of k synchronized
// non-backtracking walkers from start.
func NBCoverTime(g *Graph, start int32, k int, opts MCOptions) (Estimate, error) {
	return walk.EstimateNBCoverTime(g, start, k, opts)
}

// Exact cover-time distribution (tiny graphs).

// CoverTimeDistribution returns Pr[τ = t] for t = 0..maxT for the
// single-walk cover time from start (n ≤ 18), plus the unabsorbed tail
// mass Pr[τ > maxT].
func CoverTimeDistribution(g *Graph, start int32, maxT int) ([]float64, float64, error) {
	return exact.CoverTimeDistribution(g, start, maxT)
}

// DistributionMean returns the mean of a truncated cover-time distribution.
func DistributionMean(dist []float64, leftover float64) float64 {
	return exact.DistributionMean(dist, leftover)
}

// DistributionQuantile returns the smallest t with cumulative mass ≥ q
// (-1 if the truncated distribution never gets there).
func DistributionQuantile(dist []float64, q float64) int {
	return exact.DistributionQuantile(dist, q)
}

// General Markov chains.

// MarkovChain is a finite chain over a dense row-stochastic matrix.
type MarkovChain = markov.Chain

// NewMarkovChainForKernel returns the vertex-space chain of kernel k's walk
// on g — the exact reference for the kernel Monte Carlo estimators. The
// no-backtrack kernel has no vertex-space chain and returns an error.
func NewMarkovChainForKernel(g *Graph, k Kernel) (*MarkovChain, error) {
	return markov.ChainForKernel(g, k)
}

// ExactKernelCoverTime returns the exact expected cover time of kernel k's
// walk on g from start, for tiny graphs (n ≤ 18), via the subset DP over
// the kernel's chain — ground truth for KernelCoverTime.
func ExactKernelCoverTime(g *Graph, k Kernel, start int32) (float64, error) {
	c, err := markov.ChainForKernel(g, k)
	if err != nil {
		return 0, err
	}
	return exact.CoverTimeFromChain(c, start)
}

// NewMarkovChainFromWalk returns the chain of the (lazy) walk on g.
func NewMarkovChainFromWalk(g *Graph, stay float64) *MarkovChain {
	return markov.FromWalk(g, stay)
}

// AbsorbingChain answers absorption-time and absorption-probability queries.
type AbsorbingChain = markov.Absorbing

// NewAbsorbingChain prepares absorbing-chain analysis for the given
// absorbing state set.
func NewAbsorbingChain(c *MarkovChain, absorbing []int) (*AbsorbingChain, error) {
	return markov.NewAbsorbing(c, absorbing)
}
