// Hunters and prey: the paper opens with "the problem of hunting or
// tracking on a graph" — hunters and a prey each move along edges, and the
// hunters want to locate the prey fast in an unknown, changing environment,
// which is exactly where randomized exploration shines.
//
// This example stages that pursuit on a 2-d torus: the prey performs a
// random walk, k hunters perform independent random walks from a common
// base camp, and capture happens when a hunter occupies the prey's cell.
// It reports expected capture times for growing k, alongside the k-walk
// *cover* times of the same torus — showing the cover-time speed-up theory
// predicts the pursuit improvement.
//
// Run with:
//
//	go run ./examples/hunters
package main

import (
	"fmt"
	"log"

	"manywalks"
)

const (
	side      = 24 // torus side; n = 576
	hunts     = 1500
	maxRounds = 1 << 20
)

// huntOnce returns rounds until some hunter lands on (or crosses) the prey.
// Everyone moves simultaneously; capture is checked after each round.
func huntOnce(g *manywalks.Graph, base, preyStart int32, k int, r *manywalks.Rand) int {
	hunters := make([]*manywalks.Walker, k)
	for i := range hunters {
		hunters[i] = manywalks.NewWalker(g, base, r)
	}
	prey := manywalks.NewWalker(g, preyStart, r)
	if base == preyStart {
		return 0
	}
	for t := 1; t <= maxRounds; t++ {
		p := prey.Step()
		for _, h := range hunters {
			if h.Step() == p {
				return t
			}
		}
	}
	return maxRounds
}

func main() {
	g := manywalks.NewTorus2D(side)
	n := g.N()
	base := int32(0)
	preyStart := int32(n/2 + side/2) // opposite corner of the torus

	fmt.Printf("arena: %s (n=%d), hunters start at %d, prey at %d\n",
		g.Name(), n, base, preyStart)

	opts := manywalks.MCOptions{Trials: 300, Seed: 99, MaxSteps: 1 << 24}

	fmt.Printf("%-4s %-18s %-14s %-18s\n", "k", "capture (rounds)", "capture gain", "k-cover (rounds)")
	var baseCapture float64
	for _, k := range []int{1, 2, 4, 8, 16} {
		total := 0
		for h := 0; h < hunts; h++ {
			r := manywalks.NewRandStream(4242, uint64(k)<<32|uint64(h))
			total += huntOnce(g, base, preyStart, k, r)
		}
		capture := float64(total) / hunts
		if k == 1 {
			baseCapture = capture
		}
		cover, err := manywalks.KCoverTime(g, base, k, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-18.1f %-14.2f %-18.1f\n",
			k, capture, baseCapture/capture, cover.Mean())
	}
	fmt.Println("\ncapture time tracks the k-walk cover/hitting behaviour of the torus:")
	fmt.Println("doubling the hunting party roughly halves the expected time to find the prey.")
}
