// Hunters and prey: the paper opens with "the problem of hunting or
// tracking on a graph" — hunters and a prey each move along edges, and the
// hunters want to locate the prey fast in an unknown, changing environment,
// which is exactly where randomized exploration shines.
//
// This example stages that pursuit on a 2-d torus: the prey performs a
// random walk, k hunters perform independent random walks from a common
// base camp, and capture happens when a hunter occupies the prey's cell.
// It reports expected capture times for growing k, alongside the k-walk
// *cover* times of the same torus — showing the cover-time speed-up theory
// predicts the pursuit improvement.
//
// Run with:
//
//	go run ./examples/hunters
package main

import (
	"fmt"
	"log"

	"manywalks"
)

const (
	side      = 24 // torus side; n = 576
	hunts     = 1500
	maxRounds = 1 << 20
)

// huntOnce returns rounds until some hunter occupies the prey's cell.
// Everyone moves simultaneously; capture is checked after each round. The
// pursuit is one engine run: walker 0 is the prey, walkers 1..k are the
// hunters, and a pursuit observer fires on the first collision involving
// the prey — hunters crossing each other don't end the hunt.
func huntOnce(eng *manywalks.Engine, base, preyStart int32, k int, seed uint64) int {
	starts := make([]int32, k+1)
	starts[0] = preyStart
	for i := 1; i <= k; i++ {
		starts[i] = base
	}
	res, err := eng.Run(
		manywalks.RunSpec{Starts: starts, Seed: seed, MaxRounds: maxRounds},
		manywalks.NewPursuitObserver(0),
	)
	if err != nil {
		log.Fatal(err)
	}
	return int(res.Rounds)
}

func main() {
	g := manywalks.NewTorus2D(side)
	n := g.N()
	base := int32(0)
	preyStart := int32(n/2 + side/2) // opposite corner of the torus

	fmt.Printf("arena: %s (n=%d), hunters start at %d, prey at %d\n",
		g.Name(), n, base, preyStart)

	opts := manywalks.MCOptions{Trials: 300, Seed: 99, MaxSteps: 1 << 24}

	eng := manywalks.NewEngine(g, manywalks.EngineOptions{})
	fmt.Printf("%-4s %-18s %-14s %-18s\n", "k", "capture (rounds)", "capture gain", "k-cover (rounds)")
	var baseCapture float64
	for _, k := range []int{1, 2, 4, 8, 16} {
		total := 0
		for h := 0; h < hunts; h++ {
			total += huntOnce(eng, base, preyStart, k, uint64(k)<<32|uint64(h))
		}
		capture := float64(total) / hunts
		if k == 1 {
			baseCapture = capture
		}
		cover, err := manywalks.KCoverTime(g, base, k, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-18.1f %-14.2f %-18.1f\n",
			k, capture, baseCapture/capture, cover.Mean())
	}
	fmt.Println("\ncapture time tracks the k-walk cover/hitting behaviour of the torus:")
	fmt.Println("doubling the hunting party roughly halves the expected time to find the prey.")
}
