// Quickstart: measure how much faster eight random walks cover a torus than
// one walk does, and compare the measurement against the paper's bounds.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"manywalks"
)

func main() {
	// The 2-d torus is the paper's canonical "grid" row in Table 1:
	// cover time Θ(n log² n), hitting time Θ(n log n), and a linear
	// speed-up for k below log n (and a little beyond, at finite sizes).
	g := manywalks.NewTorus2D(24) // n = 576
	fmt.Printf("graph: %s with n=%d vertices, m=%d edges\n", g.Name(), g.N(), g.M())

	opts := manywalks.MCOptions{
		Trials:   400,
		Seed:     2008,
		MaxSteps: 1 << 26,
	}

	// Single walk versus an 8-walk, both from vertex 0.
	point, err := manywalks.Speedup(g, 0, 8, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single walk cover time C      = %s steps\n", point.Single.Summary)
	fmt.Printf("8-walk cover time C^8         = %s rounds\n", point.Multi.Summary)
	fmt.Printf("speed-up S^8 = C/C^8          = %.2f (per-walker %.2f)\n",
		point.Speedup, point.PerWalker)

	// Exact reference quantities: hitting extremes and Matthews' sandwich.
	bounds, err := manywalks.ComputeBounds(g, 0, manywalks.NewRand(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact hmax                    = %.0f\n", bounds.Hmax)
	fmt.Printf("Matthews sandwich for C       = [%.0f, %.0f]\n",
		bounds.MatthewsLower, bounds.MatthewsUpper)
	fmt.Printf("Baby Matthews bound on C^8    = %.0f (Theorem 13)\n",
		bounds.BabyMatthewsBound(8))

	// Sweep k and let the library name the regime.
	points, err := manywalks.SpeedupSweep(g, 0, []int{2, 4, 8, 16}, opts)
	if err != nil {
		log.Fatal(err)
	}
	cls, err := manywalks.ClassifySpeedups(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speed-up regime               = %s (paper predicts linear for k ≲ log n)\n", cls.Regime)
}
