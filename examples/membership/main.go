// Membership sampling: the paper cites RaWMS (ref [10]), a membership
// service for ad-hoc networks in which a node learns random peers by
// sending tokens on random walks — a walk longer than the mixing time stops
// at a ≈stationary-random node, giving each node a uniform view of the
// network without any global coordination.
//
// This example runs that service on a random 4-regular overlay (regular, so
// stationary = uniform) and shows the walk-length/uniformity trade-off: the
// chi-squared statistic of the sampled peer distribution collapses to its
// ideal value (≈ n−1) once the walk length passes the measured mixing time,
// and short walks produce views heavily biased toward the origin's
// neighborhood.
//
// Run with:
//
//	go run ./examples/membership
package main

import (
	"fmt"
	"log"

	"manywalks"
)

const (
	peers   = 512
	degree  = 4
	samples = 20000
)

func chiSquared(g *manywalks.Graph, got []int32) float64 {
	counts := make([]int, g.N())
	for _, s := range got {
		counts[s]++
	}
	expected := float64(len(got)) / float64(g.N())
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2
}

func main() {
	r := manywalks.NewRand(808)
	g, err := manywalks.NewConnectedRandomRegular(peers, degree, r, 500)
	if err != nil {
		log.Fatal(err)
	}

	// The paper-definition mixing time of the overlay tells us how long the
	// sampling walks must be.
	tm := manywalks.MixingTime(g, 0, []int32{0}, 10*peers)
	gap := manywalks.SpectralGap(g, 0, r)
	fmt.Printf("overlay: %s, spectral gap %.3f, mixing time t_m = %d rounds\n\n",
		g.Name(), gap, tm)

	fmt.Printf("%-10s %-14s %-30s\n", "walk len", "chi² (dof=511)", "verdict")
	for _, L := range []int{1, 2, 4, 8, tm, 2 * tm, 4 * tm} {
		got := manywalks.RunMembershipSampling(g, 0, samples, L,
			manywalks.NewRandStream(909, uint64(L)))
		chi2 := chiSquared(g, got)
		verdict := "uniform (ideal ≈ n-1 = 511)"
		// 99.9% quantile of chi²(511) ≈ 626.
		if chi2 > 700 {
			verdict = "biased toward origin"
		}
		fmt.Printf("%-10d %-14.0f %-30s\n", L, chi2, verdict)
	}
	fmt.Println("\nwalks a small multiple of the mixing time long deliver uniform membership")
	fmt.Println("samples (t_m targets an L1 distance of 1/e — a 1/poly(n) bias needs ~2-4·t_m);")
	fmt.Println("shorter walks leak the origin's neighborhood, exactly as the theory predicts.")
}
