// Randomized s-t connectivity: the paper's related-work section (§1.1)
// traces its lineage to time-space trade-offs for undirected st-connectivity
// (Broder–Karlin–Raghavan–Upfal; Barnes–Feige), where algorithms run many
// short random walks instead of one long one.
//
// This example implements the one-sided Monte Carlo connectivity tester:
// run k walks of length L from s and answer "connected to t" if any walk
// touches t. On a yes-instance the error probability decays like
// (1-p)^k where p is a single short walk's hit probability — so walks trade
// off against length exactly as the k-walk cover theory predicts. The demo
// measures that decay on a "two communities + one bridge" network, the hard
// case for short walks, plus a disconnected control (never a false yes).
//
// Run with:
//
//	go run ./examples/stconnect
package main

import (
	"fmt"
	"log"
	"math"

	"manywalks"
)

const trialsPerSetting = 800

// twoCommunities builds two expander communities of size half each, joined
// by a single bridge edge, and returns the graph plus s (in community A)
// and t (in community B).
func twoCommunities(half int, seed uint64) (*manywalks.Graph, int32, int32) {
	r := manywalks.NewRand(seed)
	a, err := manywalks.NewConnectedRandomRegular(half, 4, r, 500)
	if err != nil {
		log.Fatal(err)
	}
	bGraph, err := manywalks.NewConnectedRandomRegular(half, 4, r, 500)
	if err != nil {
		log.Fatal(err)
	}
	builder := manywalks.NewGraphBuilder(2 * half)
	for v := int32(0); v < int32(half); v++ {
		for _, u := range a.Neighbors(v) {
			if u > v {
				builder.AddEdge(v, u)
			}
		}
		for _, u := range bGraph.Neighbors(v) {
			if u > v {
				builder.AddEdge(v+int32(half), u+int32(half))
			}
		}
	}
	builder.AddEdge(0, int32(half)) // the bridge
	return builder.Build("two-communities"), 1, int32(half) + 1
}

// test runs one k-walk connectivity test: true if any of the k length-L
// walks from s touches t. The k walks run as one synchronized batch on
// the engine — the event "some walk of length L hits t" is identical
// whether the walks run sequentially or in parallel rounds.
func test(eng *manywalks.Engine, isTarget []bool, s int32, k int, L int64, seed uint64) bool {
	return eng.KHitFrom(s, k, isTarget, seed, L).Hit
}

func main() {
	const half = 256
	g, s, t := twoCommunities(half, 31337)
	n := g.N()

	// Walk length: short relative to the bridge-crossing hitting time, so a
	// single walk often fails — the regime where extra walks pay off.
	L := int64(8 * n)
	fmt.Printf("network: %s, n=%d, bridge edge between communities\n", g.Name(), n)
	fmt.Printf("testing s=%d (community A) against t=%d (community B), walk length L=%d\n\n", s, t, L)

	eng := manywalks.NewEngine(g, manywalks.EngineOptions{})
	isTarget := make([]bool, n)
	isTarget[t] = true
	fmt.Printf("%-4s %-14s %-24s\n", "k", "P[detect]", "implied per-walk p̂")
	for _, k := range []int{1, 2, 4, 8, 16} {
		hits := 0
		for q := 0; q < trialsPerSetting; q++ {
			if test(eng, isTarget, s, k, L, uint64(k)<<40|uint64(q)) {
				hits++
			}
		}
		pDetect := float64(hits) / trialsPerSetting
		// Invert (1-p)^k = 1 - pDetect for the single-walk hit probability.
		var pSingle float64
		if pDetect < 1 {
			pSingle = 1 - math.Pow(1-pDetect, 1/float64(k))
		} else {
			pSingle = 1
		}
		fmt.Printf("%-4d %-14.3f %-24.3f\n", k, pDetect, pSingle)
	}

	// Control: genuinely disconnected input must never produce a false yes.
	gd, sd, td := disconnected(half)
	engD := manywalks.NewEngine(gd, manywalks.EngineOptions{})
	isTargetD := make([]bool, gd.N())
	isTargetD[td] = true
	falseYes := 0
	for q := 0; q < 200; q++ {
		if test(engD, isTargetD, sd, 16, L, uint64(q)) {
			falseYes++
		}
	}
	fmt.Printf("\ndisconnected control: %d/200 false positives (one-sided error as designed)\n", falseYes)
	fmt.Println("detection probability rises as 1-(1-p)^k: k short walks buy reliability")
	fmt.Println("that a single walk of the same length cannot reach.")
}

// disconnected builds the same two communities without the bridge.
func disconnected(half int) (*manywalks.Graph, int32, int32) {
	r := manywalks.NewRand(171717)
	a, err := manywalks.NewConnectedRandomRegular(half, 4, r, 500)
	if err != nil {
		log.Fatal(err)
	}
	b, err := manywalks.NewConnectedRandomRegular(half, 4, r, 500)
	if err != nil {
		log.Fatal(err)
	}
	builder := manywalks.NewGraphBuilder(2 * half)
	for v := int32(0); v < int32(half); v++ {
		for _, u := range a.Neighbors(v) {
			if u > v {
				builder.AddEdge(v, u)
			}
		}
		for _, u := range b.Neighbors(v) {
			if u > v {
				builder.AddEdge(v+int32(half), u+int32(half))
			}
		}
	}
	return builder.Build("two-islands"), 1, int32(half) + 1
}
