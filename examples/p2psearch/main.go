// P2P search: the paper's introduction motivates multiple random walks with
// querying in peer-to-peer and sensor networks. This example models an
// unstructured P2P overlay as a random 4-regular graph, replicates a
// resource on a handful of peers, and compares how long a 1-walker query
// takes to find a replica against k-walker queries — reporting both latency
// (rounds until the first walker hits a replica) and bandwidth (total walker
// steps consumed, the number of query messages sent).
//
// The expected outcome, per the paper's expander results (random regular
// graphs are expanders whp): latency improves nearly k-fold while total
// message count stays roughly flat — parallel walks buy latency, not extra
// bandwidth.
//
// Run with:
//
//	go run ./examples/p2psearch
package main

import (
	"fmt"
	"log"

	"manywalks"
)

const (
	peers     = 2048
	degree    = 4
	replicas  = 8
	queries   = 2000
	maxRounds = 1 << 20
)

// searchOnce runs one k-walker query from start and returns the number of
// rounds until any walker stands on a replica, plus total steps spent.
func searchOnce(g *manywalks.Graph, start int32, k int, isReplica []bool, r *manywalks.Rand) (rounds, steps int) {
	walkers := make([]*manywalks.Walker, k)
	for i := range walkers {
		walkers[i] = manywalks.NewWalker(g, start, r)
	}
	if isReplica[start] {
		return 0, 0
	}
	for t := 1; t <= maxRounds; t++ {
		for _, w := range walkers {
			steps++
			if isReplica[w.Step()] {
				return t, steps
			}
		}
	}
	return maxRounds, steps
}

func main() {
	r := manywalks.NewRand(777)
	g, err := manywalks.NewConnectedRandomRegular(peers, degree, r, 500)
	if err != nil {
		log.Fatal(err)
	}
	// Certify the overlay is an expander before relying on expander math.
	gap := manywalks.SpectralGap(g, 0, r)
	fmt.Printf("overlay: %s, spectral gap %.3f (expander: gap bounded away from 0)\n",
		g.Name(), gap)

	// Place replicas away from the querying node.
	isReplica := make([]bool, peers)
	placed := 0
	for placed < replicas {
		v := int32(r.Intn(peers))
		if v != 0 && !isReplica[v] {
			isReplica[v] = true
			placed++
		}
	}

	fmt.Printf("%-4s %-16s %-16s %-14s\n", "k", "mean latency", "mean messages", "latency gain")
	var baseline float64
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		totalRounds, totalSteps := 0, 0
		for q := 0; q < queries; q++ {
			qr := manywalks.NewRandStream(1234, uint64(k*1000003+q))
			rounds, steps := searchOnce(g, 0, k, isReplica, qr)
			totalRounds += rounds
			totalSteps += steps
		}
		lat := float64(totalRounds) / queries
		msg := float64(totalSteps) / queries
		if k == 1 {
			baseline = lat
		}
		fmt.Printf("%-4d %-16.1f %-16.1f %-14.2f\n", k, lat, msg, baseline/lat)
	}
	fmt.Println("\nparallel walks cut query latency nearly k-fold on the expander overlay")
	fmt.Println("while total message volume stays within a small constant of the single walk.")
}
