// P2P search: the paper's introduction motivates multiple random walks with
// querying in peer-to-peer and sensor networks. This example models an
// unstructured P2P overlay as a random 4-regular graph, replicates a
// resource on a handful of peers, and compares how long a 1-walker query
// takes to find a replica against k-walker queries — reporting both latency
// (rounds until the first walker hits a replica) and bandwidth (total walker
// steps consumed, the number of query messages sent).
//
// The expected outcome, per the paper's expander results (random regular
// graphs are expanders whp): latency improves nearly k-fold while total
// message count stays roughly flat — parallel walks buy latency, not extra
// bandwidth.
//
// Run with:
//
//	go run ./examples/p2psearch
package main

import (
	"fmt"
	"log"

	"manywalks"
)

const (
	peers     = 2048
	degree    = 4
	replicas  = 8
	queries   = 2000
	maxRounds = 1 << 20
)

// searchOnce runs one k-walker query through the batched engine and
// returns the number of rounds until any walker stands on a replica, plus
// total steps spent (every walker steps once per elapsed round — the
// query's message cost).
func searchOnce(eng *manywalks.Engine, start int32, k int, isReplica []bool, seed uint64) (rounds, steps int) {
	if isReplica[start] {
		return 0, 0
	}
	res := eng.KHitFrom(start, k, isReplica, seed, maxRounds)
	return int(res.Rounds), k * int(res.Rounds)
}

func main() {
	r := manywalks.NewRand(777)
	g, err := manywalks.NewConnectedRandomRegular(peers, degree, r, 500)
	if err != nil {
		log.Fatal(err)
	}
	// Certify the overlay is an expander before relying on expander math.
	gap := manywalks.SpectralGap(g, 0, r)
	fmt.Printf("overlay: %s, spectral gap %.3f (expander: gap bounded away from 0)\n",
		g.Name(), gap)

	// Place replicas away from the querying node.
	isReplica := make([]bool, peers)
	placed := 0
	for placed < replicas {
		v := int32(r.Intn(peers))
		if v != 0 && !isReplica[v] {
			isReplica[v] = true
			placed++
		}
	}

	// One engine serves every query; each query gets its own seed, so the
	// whole sweep is reproducible and trivially parallelizable.
	eng := manywalks.NewEngine(g, manywalks.EngineOptions{})
	fmt.Printf("%-4s %-16s %-16s %-14s\n", "k", "mean latency", "mean messages", "latency gain")
	var baseline float64
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		totalRounds, totalSteps := 0, 0
		for q := 0; q < queries; q++ {
			rounds, steps := searchOnce(eng, 0, k, isReplica, uint64(k*1000003+q))
			totalRounds += rounds
			totalSteps += steps
		}
		lat := float64(totalRounds) / queries
		msg := float64(totalSteps) / queries
		if k == 1 {
			baseline = lat
		}
		fmt.Printf("%-4d %-16.1f %-16.1f %-14.2f\n", k, lat, msg, baseline/lat)
	}
	fmt.Println("\nparallel walks cut query latency nearly k-fold on the expander overlay")
	fmt.Println("while total message volume stays within a small constant of the single walk.")
}
