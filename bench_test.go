// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, as indexed in DESIGN.md. Each benchmark runs the corresponding
// harness experiment end to end and reports the headline quantities as
// custom benchmark metrics (speedup, cover-rounds, bound margins), so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's evaluation and records the measured shapes.
// Rendered report tables are emitted through b.Logf (visible with -v).
package manywalks_test

import (
	"strconv"
	"testing"

	"manywalks"
	"manywalks/internal/harness"
)

// benchConfig keeps benchmark iterations affordable while preserving the
// paper's qualitative shapes; the cmd/ binaries run the full-size versions.
func benchConfig() harness.Config {
	cfg := harness.QuickConfig()
	cfg.Trials = 150
	return cfg
}

// BenchmarkTable1 regenerates every row of Table 1 (experiments T1-*).
func BenchmarkTable1(b *testing.B) {
	for _, fam := range harness.Table1Families() {
		b.Run(fam.Key, func(b *testing.B) {
			var row *harness.Table1Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = harness.RunTable1Row(fam, benchConfig())
				if err != nil {
					b.Fatal(err)
				}
			}
			last := row.Points[len(row.Points)-1]
			b.ReportMetric(row.Cover.Mean(), "cover-steps")
			b.ReportMetric(last.Speedup, "speedup@k="+strconv.Itoa(last.K))
			b.ReportMetric(last.PerWalker, "perwalker")
			if row.MixingTime > 0 {
				b.ReportMetric(float64(row.MixingTime), "t_m")
			}
			if !row.RegimeOK {
				b.Fatalf("family %s: regime %s != expected %s",
					fam.Key, row.Classification.Regime, fam.WantRegime)
			}
			b.Logf("family %s (n=%d): C=%s, S^%d=%.2f, regime=%s",
				fam.Key, row.N, row.Cover.Summary, last.K, last.Speedup,
				row.Classification.Regime)
		})
	}
}

// runReport is the shared driver for experiment benchmarks.
func runReport(b *testing.B, run func(harness.Config) (*harness.Report, error)) *harness.Report {
	b.Helper()
	var rep *harness.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = run(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	if !rep.Pass {
		b.Fatalf("experiment %s failed:\n%s", rep.ID, rep.Render())
	}
	b.Logf("\n%s", rep.Render())
	return rep
}

// BenchmarkFigure1Barbell regenerates Figure 1 / Theorem 7 (F1-barbell).
func BenchmarkFigure1Barbell(b *testing.B) {
	rep := runReport(b, harness.RunBarbellFigure)
	// Headline: last row's S^k and S^k/k.
	last := rep.Rows[len(rep.Rows)-1]
	if s, err := strconv.ParseFloat(last[len(last)-2], 64); err == nil {
		b.ReportMetric(s, "speedup")
	}
	if pw, err := strconv.ParseFloat(last[len(last)-1], 64); err == nil {
		b.ReportMetric(pw, "perwalker")
	}
}

// BenchmarkThm6CycleLogK fits the cycle's Θ(log k) speed-up (E-thm6).
func BenchmarkThm6CycleLogK(b *testing.B) {
	runReport(b, harness.RunTheorem6CycleFit)
}

// BenchmarkThm8GridSpectrum contrasts small-k and huge-k behaviour on the
// 2-d torus (E-thm8).
func BenchmarkThm8GridSpectrum(b *testing.B) {
	runReport(b, harness.RunTheorem8GridSpectrum)
}

// BenchmarkThm13BabyMatthews validates Theorem 13's k-walk bound (E-thm13).
func BenchmarkThm13BabyMatthews(b *testing.B) {
	runReport(b, harness.RunTheorem13BabyMatthews)
}

// BenchmarkThm9MixingBound validates the mixing-time bound (E-thm9).
func BenchmarkThm9MixingBound(b *testing.B) {
	runReport(b, harness.RunTheorem9MixingBound)
}

// BenchmarkThm1Matthews validates the Matthews sandwich (E-thm1).
func BenchmarkThm1Matthews(b *testing.B) {
	runReport(b, harness.RunTheorem1Matthews)
}

// BenchmarkThm17Concentration demonstrates the Aldous threshold (E-thm17).
func BenchmarkThm17Concentration(b *testing.B) {
	runReport(b, harness.RunTheorem17Concentration)
}

// BenchmarkLem19ExpanderVisit validates the short-walk visit probability
// bound on the certified expander (E-lem19).
func BenchmarkLem19ExpanderVisit(b *testing.B) {
	runReport(b, harness.RunLemma19ExpanderVisit)
}

// BenchmarkLem22CycleUpper brackets the cycle's C^k between the Lemma 21
// and Lemma 22 bounds (E-lem22).
func BenchmarkLem22CycleUpper(b *testing.B) {
	runReport(b, harness.RunLemma22CycleBounds)
}

// BenchmarkProp23Binomial Monte Carlo checks Proposition 23 (E-prop23).
func BenchmarkProp23Binomial(b *testing.B) {
	runReport(b, harness.RunProposition23)
}

// BenchmarkConj10SpeedupCap probes Conjecture 10 (E-conj10).
func BenchmarkConj10SpeedupCap(b *testing.B) {
	runReport(b, harness.RunConjecture10Probe)
}

// BenchmarkAblationStartDist compares origin vs stationary starts (A-start).
func BenchmarkAblationStartDist(b *testing.B) {
	runReport(b, harness.RunAblationStartDistribution)
}

// BenchmarkAblationLazyWalk measures the lazy-walk cover overhead (A-lazy).
func BenchmarkAblationLazyWalk(b *testing.B) {
	runReport(b, harness.RunAblationLazyWalk)
}

// BenchmarkKernelSweep regenerates the kernel-sweep experiment (E-kernels):
// S^16 under every walk kernel on the paper's four topologies.
func BenchmarkKernelSweep(b *testing.B) {
	runReport(b, harness.RunKernelSpeedupSweep)
}

// Engine micro-benchmarks: raw stepping and cover throughput through the
// public API, for performance tracking rather than paper reproduction.

// BenchmarkEngineKCover64 samples C^64 on the Table-1 expander through the
// public batched-engine API; compare with BenchmarkKCoverLegacy/
// BenchmarkKCoverEngine in internal/walk for the engine-vs-legacy numbers.
func BenchmarkEngineKCover64(b *testing.B) {
	g := manywalks.NewMargulisExpander(24)
	eng := manywalks.NewEngine(g, manywalks.EngineOptions{})
	b.ResetTimer()
	var rounds int64
	for i := 0; i < b.N; i++ {
		res := eng.KCoverFrom(0, 64, uint64(i), 1<<30)
		if !res.Covered {
			b.Fatal("not covered")
		}
		rounds += res.Steps
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "cover-rounds")
}

// BenchmarkEngineKHit64 drives the engine's marked-vertex search, the
// primitive behind the netsim walk queries and the p2psearch example.
func BenchmarkEngineKHit64(b *testing.B) {
	g := manywalks.NewMargulisExpander(24)
	eng := manywalks.NewEngine(g, manywalks.EngineOptions{})
	marked := make([]bool, g.N())
	for v := 50; v < g.N(); v += 97 {
		marked[v] = true
	}
	starts := make([]int32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.KHit(starts, marked, uint64(i), 1<<20).Hit {
			b.Fatal("no hit")
		}
	}
}

func BenchmarkWalkerSteps(b *testing.B) {
	g := manywalks.NewTorus2D(64)
	w := manywalks.NewWalker(g, 0, manywalks.NewRand(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
}

func BenchmarkSingleCoverTorus32(b *testing.B) {
	g := manywalks.NewTorus2D(32)
	opts := manywalks.MCOptions{Trials: 8, Seed: 1, MaxSteps: 1 << 26, Workers: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i + 1)
		if _, err := manywalks.CoverTime(g, 0, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKCover16Torus32(b *testing.B) {
	g := manywalks.NewTorus2D(32)
	opts := manywalks.MCOptions{Trials: 8, Seed: 1, MaxSteps: 1 << 26, Workers: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i + 1)
		if _, err := manywalks.KCoverTime(g, 0, 16, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactHittingTimes256(b *testing.B) {
	g := manywalks.NewTorus2D(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := manywalks.ComputeHittingTimes(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMixingTimeExpander(b *testing.B) {
	g := manywalks.NewMargulisExpander(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tm := manywalks.MixingTime(g, 0, []int32{0}, 10000); tm < 0 {
			b.Fatal("mixing truncated")
		}
	}
}
