package manywalks

import (
	"io"

	"manywalks/internal/core"
	"manywalks/internal/exact"
	"manywalks/internal/graph"
	"manywalks/internal/linalg"
	"manywalks/internal/rng"
	"manywalks/internal/serve"
	"manywalks/internal/spectral"
	"manywalks/internal/walk"
)

// Graph is an immutable undirected graph in CSR form; construct instances
// with the New* generators below or with NewGraphBuilder.
type Graph = graph.Graph

// GraphBuilder incrementally assembles a Graph from edges.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a custom graph on n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// Rand is the deterministic random source used throughout the library
// (xoshiro256++). Distinct (seed, stream) pairs give independent streams.
type Rand = rng.Source

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// NewRandStream returns the stream-th independent generator under seed.
func NewRandStream(seed, stream uint64) *Rand { return rng.NewStream(seed, stream) }

// Graph generators — one per family in the paper's evaluation.

// NewCycle returns the cycle on n vertices (Theorem 6's Θ(log k) family).
func NewCycle(n int) *Graph { return graph.Cycle(n) }

// NewPath returns the path graph on n vertices.
func NewPath(n int) *Graph { return graph.Path(n) }

// NewComplete returns K_n; withLoops adds a self-loop per vertex (the
// Lemma 12 coupon-collector variant).
func NewComplete(n int, withLoops bool) *Graph { return graph.Complete(n, withLoops) }

// NewStar returns the star graph on n vertices with center 0.
func NewStar(n int) *Graph { return graph.Star(n) }

// NewGrid returns the d-dimensional grid with the given side lengths;
// torus=true gives periodic boundaries (the paper's grid rows).
func NewGrid(dims []int, torus bool) *Graph { return graph.Grid(dims, torus) }

// NewTorus2D returns the side×side 2-dimensional torus.
func NewTorus2D(side int) *Graph { return graph.Torus2D(side) }

// NewHypercube returns the dim-dimensional hypercube (n = 2^dim).
func NewHypercube(dim int) *Graph { return graph.Hypercube(dim) }

// NewBalancedTree returns the complete arity-ary tree of the given height.
func NewBalancedTree(arity, height int) *Graph { return graph.BalancedTree(arity, height) }

// NewBarbell returns the paper's barbell B_n (odd n): two cliques of size
// (n-1)/2 joined through a center vertex, which is returned too.
func NewBarbell(n int) (*Graph, int32) { return graph.Barbell(n) }

// NewLollipop returns a clique with a path tail (the Θ(n³) cover-time
// worst case referenced in the paper's preliminaries).
func NewLollipop(cliqueN, pathN int) *Graph { return graph.Lollipop(cliqueN, pathN) }

// NewErdosRenyi samples G(n,p); see also NewConnectedErdosRenyi.
func NewErdosRenyi(n int, p float64, r *Rand) *Graph { return graph.ErdosRenyi(n, p, r) }

// NewConnectedErdosRenyi resamples G(n,p) until connected (≤ maxTries).
func NewConnectedErdosRenyi(n int, p float64, r *Rand, maxTries int) (*Graph, error) {
	return graph.ConnectedErdosRenyi(n, p, r, maxTries)
}

// NewRandomRegular samples a simple d-regular graph (configuration model
// with switch repair).
func NewRandomRegular(n, d int, r *Rand, maxTries int) (*Graph, error) {
	return graph.RandomRegular(n, d, r, maxTries)
}

// NewConnectedRandomRegular resamples until the d-regular graph is connected.
func NewConnectedRandomRegular(n, d int, r *Rand, maxTries int) (*Graph, error) {
	return graph.ConnectedRandomRegular(n, d, r, maxTries)
}

// NewRandomGeometric samples n points in the unit square, connecting pairs
// within the given radius.
func NewRandomGeometric(n int, radius float64, r *Rand) *Graph {
	return graph.RandomGeometric(n, radius, r)
}

// NewMargulisExpander returns the Margulis–Gabber–Galil expander on the
// m×m torus (n = m²) — the explicit (n,d,λ)-graph used for the paper's
// expander rows.
func NewMargulisExpander(m int) *Graph { return graph.MargulisExpander(m) }

// NewCycleWithChords returns the 3-regular inverse-chord expander on a
// prime p.
func NewCycleWithChords(p int) *Graph { return graph.CycleWithChords(p) }

// Simulation API.

// Walker is a simple random walker; drive it with Step. For batch
// workloads prefer Engine, which advances many walkers in vectorized
// rounds.
type Walker = walk.Walker

// NewWalker places a walker on g at start.
func NewWalker(g *Graph, start int32, r *Rand) *Walker { return walk.NewWalker(g, start, r) }

// Engine is the batched k-walk engine: walker positions in flat arrays,
// one deterministic RNG stream per walker, rounds advanced in batches with
// the walker array sharded across a worker pool. Results are bit-for-bit
// reproducible for a fixed (graph, starts, seed, budget) regardless of
// EngineOptions. An Engine is immutable and safe for concurrent use;
// construct one per graph and reuse it across runs.
type Engine = walk.Engine

// EngineOptions tunes Engine performance (Workers, BatchRounds) and
// selects the step law (Kernel); the zero value selects sensible defaults
// and the uniform kernel. Workers and BatchRounds never affect results.
type EngineOptions = walk.EngineOptions

// Kernel selects a walk step law; the engine compiles it into per-vertex
// sampling tables. A nil Kernel means the paper's uniform walk. Every
// kernel keeps the engine's bit-for-bit determinism guarantee across
// Workers/BatchRounds. Kernel is an open interface: register new families
// with RegisterKernel and they flow through ParseKernel, the engine
// compiler, the Markov/exact cross-checks, and the serving stack without
// further wiring.
type Kernel = walk.Kernel

// KernelFamily describes one registered kernel family: its canonical name,
// flag syntax, and parser. See RegisterKernel.
type KernelFamily = walk.KernelFamily

// Support classifies where a kernel's transition rows live, selecting the
// compilation strategy; third-party Kernel implementations return one of
// the constants below from their Support method.
type Support = walk.Support

const (
	// SupportSparse rows place mass only on CSR neighbors plus an optional
	// stay-at-v outcome; they compile to CSR-shaped alias tables.
	SupportSparse = walk.SupportSparse
	// SupportDense rows may place mass on arbitrary vertices; they compile
	// to the memory-capped dense row bank (bound it in Validate via
	// DenseTableFits so serving layers reject oversized tables cleanly).
	SupportDense = walk.SupportDense
)

// DenseTableFits reports whether a dense kernel's row bank on g fits the
// compiler's memory cap; dense kernels call it from Validate.
func DenseTableFits(g *Graph) error { return walk.DenseTableFits(g) }

// UniformKernel is the simple random walk (the paper's model and the
// default).
func UniformKernel() Kernel { return walk.Uniform() }

// LazyKernel stays put with probability alpha each round — the standard
// theoretical normalization (alpha = 1/2 removes periodicity).
func LazyKernel(alpha float64) Kernel { return walk.Lazy(alpha) }

// WeightedKernel steps to a neighbor with probability proportional to the
// edge weight; on unweighted graphs it coincides with the uniform walk.
func WeightedKernel() Kernel { return walk.Weighted() }

// NoBacktrackKernel never immediately reverses an edge (degree-1 dead ends
// excepted) — the "smarter token" variant that is ballistic on the cycle.
func NoBacktrackKernel() Kernel { return walk.NoBacktrack() }

// MetropolisKernel is the Metropolis–Hastings chain with uniform target
// distribution: its stationary law is uniform regardless of the degree
// sequence, the natural choice for unbiased sampling workloads.
func MetropolisKernel() Kernel { return walk.MetropolisUniform() }

// HopperPowerKernel is the random multi-hopper with a power-law hop
// length distribution: one step jumps to vertex u with probability
// proportional to d(v,u)^-s over the BFS graph distance d (Estrada et
// al.). Small s makes long-range hops common, collapsing cover times on
// high-diameter graphs. Hopper kernels precompute a dense per-row alias
// bank, so they are limited to graphs whose bank fits the compiler's
// memory cap.
func HopperPowerKernel(s float64) Kernel { return walk.HopperPower(s) }

// HopperExpKernel is the random multi-hopper with an exponential hop
// length distribution: P(v->u) proportional to exp(-lambda*d(v,u)).
func HopperExpKernel(lambda float64) Kernel { return walk.HopperExp(lambda) }

// ParseKernel parses the -kernel flag syntax of every registered family:
// "uniform", "lazy[:α]", "weighted", "nobacktrack", "metropolis",
// "hopper:law[:param]", plus anything added via RegisterKernel. Every
// Kernel's String() round-trips through ParseKernel to the canonical
// spelling.
func ParseKernel(s string) (Kernel, error) { return walk.ParseKernel(s) }

// RegisterKernel adds a new kernel family to the registry, making its
// syntax parseable by ParseKernel (and therefore by every -kernel flag and
// HTTP request field). It panics if the name or an alias is already taken.
func RegisterKernel(f KernelFamily) { walk.RegisterKernel(f) }

// KernelFamilies lists the registered kernel families in registration
// order; KernelHelp renders the same listing as the -kernel help text.
func KernelFamilies() []KernelFamily { return walk.KernelFamilies() }

// KernelHelp returns the human-readable registry listing printed by the
// CLIs' "-kernel help".
func KernelHelp() string { return walk.KernelHelp() }

// AllKernels lists one example kernel per registered family, in
// registration order (uniform first).
func AllKernels() []Kernel { return walk.Kernels() }

// Reweight returns a weighted copy of g with identical topology where edge
// {u,v} (u <= v) gets weight f(u, v); f must return positive finite
// weights. Use GraphBuilder.AddWeightedEdge to build weighted graphs from
// scratch.
func Reweight(g *Graph, f func(u, v int32) float64) *Graph { return graph.Reweight(g, f) }

// CoverResult reports one cover-time run: rounds elapsed and whether the
// stop condition was met within the budget.
type CoverResult = walk.CoverResult

// HitResult reports a marked-vertex search: the hit round, vertex, and
// walker index.
type HitResult = walk.HitResult

// NewEngine returns a batched k-walk engine for g. It panics if g has an
// isolated vertex.
func NewEngine(g *Graph, opts EngineOptions) *Engine { return walk.NewEngine(g, opts) }

// RunKWalk runs one synchronized k-walk from start until full cover (or
// maxRounds) on a fresh default-options engine — the paper's C^k(G, start)
// experiment as a one-liner. Callers running many k-walks should hold a
// NewEngine and use its KCover/KCoverFrom/KHit/KFirstVisits methods.
func RunKWalk(g *Graph, start int32, k int, seed uint64, maxRounds int64) CoverResult {
	return walk.NewEngine(g, walk.EngineOptions{}).KCoverFrom(start, k, seed, maxRounds)
}

// Observer run-loop API: one engine core drives every estimate, observed
// through pluggable per-shard scan hooks and exact barrier merges. See
// Engine.Run.

// RunSpec describes one engine run: starting placement, root seed, round
// budget, and the stop condition evaluated against the run's observers
// (nil means StopWhenAll).
type RunSpec = walk.RunSpec

// RunResult reports how a run ended: the exact round the stop condition
// fired, or the exhausted budget.
type RunResult = walk.RunResult

// Observer watches an engine run; construct instances with the New*Observer
// functions below. Observers are single-run objects.
type Observer = walk.Observer

// StopCondition combines observer verdicts into the run's halt decision.
type StopCondition = walk.StopCondition

// StopWhenAll halts a run at the first round every observer is satisfied
// (the default).
func StopWhenAll() StopCondition { return walk.StopWhenAll() }

// StopWhenAny halts a run at the first round any observer is satisfied.
func StopWhenAny() StopCondition { return walk.StopWhenAny() }

// RunToHorizon never halts early; the run spends its full MaxRounds.
func RunToHorizon() StopCondition { return walk.RunToHorizon() }

// CoverObserver tracks distinct visited vertices (full/partial cover,
// first-visit logs, coverage profiles, multi-target searches).
type CoverObserver = walk.CoverObserver

// HitObserver watches for any walker standing on a marked vertex.
type HitObserver = walk.HitObserver

// CollisionObserver detects walkers sharing a vertex (meeting, pursuit,
// coalescence).
type CollisionObserver = walk.CollisionObserver

// NewCoverObserver returns a full-cover observer.
func NewCoverObserver() *CoverObserver { return walk.NewCoverObserver() }

// NewCoverTargetObserver returns an observer satisfied at target distinct
// visits.
func NewCoverTargetObserver(target int) *CoverObserver { return walk.NewCoverTargetObserver(target) }

// NewFirstVisitObserver returns a full-cover observer recording every
// vertex's first-visit round.
func NewFirstVisitObserver() *CoverObserver { return walk.NewFirstVisitObserver() }

// NewPartialCoverObserver records the exact round each cover fraction in
// thresholds (nondecreasing, in (0,1]) is reached.
func NewPartialCoverObserver(thresholds []float64) *CoverObserver {
	return walk.NewPartialCoverObserver(thresholds)
}

// NewTargetSetObserver is satisfied once every target vertex has been
// visited, recording per-target first-hit rounds.
func NewTargetSetObserver(targets []int32) *CoverObserver { return walk.NewTargetSetObserver(targets) }

// NewHitObserver returns a hit observer for the marked vertex set.
func NewHitObserver(marked []bool) *HitObserver { return walk.NewHitObserver(marked) }

// NewMeetingObserver is satisfied at the first round any two walkers share
// a vertex.
func NewMeetingObserver() *CollisionObserver { return walk.NewMeetingObserver() }

// NewPursuitObserver counts only collisions involving walker focus — the
// hunters-and-prey pursuit with the prey as one walker of the run.
func NewPursuitObserver(focus int) *CollisionObserver { return walk.NewPursuitObserver(focus) }

// NewCoalescenceObserver is satisfied when all walkers have merged into
// one meeting-equivalence class.
func NewCoalescenceObserver() *CollisionObserver { return walk.NewCoalescenceObserver() }

// MeetResult reports a pairwise meeting run.
type MeetResult = walk.MeetResult

// CoalesceResult reports a coalescence run.
type CoalesceResult = walk.CoalesceResult

// MultiHitResult reports a multi-target search.
type MultiHitResult = walk.MultiHitResult

// PartialCoverResult reports a partial-cover-curve run.
type PartialCoverResult = walk.PartialCoverResult

// MCOptions configures Monte Carlo estimation: Trials, Workers (0 =
// GOMAXPROCS), root Seed, and the per-trial MaxSteps budget. Estimator
// trials run as one trial-fused engine pass (all trials' walkers stepped
// together, finished trials retiring at merge barriers); results are
// bit-for-bit identical to running the trials sequentially.
type MCOptions = walk.MCOptions

// Estimate is a Monte Carlo mean with CI and truncation accounting.
type Estimate = walk.Estimate

// Precision requests adaptive sequential stopping from the estimators: set
// MCOptions.Precision with RTol > 0 and trials run in deterministic waves,
// stopping at the first wave boundary whose Student-t relative CI
// half-width is within RTol at the requested Confidence. The adaptive
// samples are a prefix of the fixed schedule (same seeds, same trial
// order), and the stop wave is a pure function of them, so the answer is
// bit-for-bit reproducible under every Workers/batch configuration. The
// zero value keeps the fixed-count path unchanged.
type Precision = walk.Precision

// WaveStat is one wave-boundary snapshot of an adaptive run: trials folded
// so far, running mean and CI half-width, and the stop decision. Serving
// requests stream them through their OnProgress callbacks.
type WaveStat = walk.WaveStat

// CoverTime estimates the expected single-walk cover time from start.
func CoverTime(g *Graph, start int32, opts MCOptions) (Estimate, error) {
	return walk.EstimateCoverTime(g, start, opts)
}

// KCoverTime estimates the expected k-walk cover time (in rounds) with all
// k walkers started at start — the paper's C^k.
func KCoverTime(g *Graph, start int32, k int, opts MCOptions) (Estimate, error) {
	return walk.EstimateKCoverTime(g, start, k, opts)
}

// KCoverTimeStationary starts the k walkers from fresh stationary samples
// each trial (the §1.1 Broder et al. setting).
func KCoverTimeStationary(g *Graph, k int, opts MCOptions) (Estimate, error) {
	return walk.EstimateKCoverTimeStationary(g, k, opts)
}

// HittingTime estimates h(start, target) by simulation.
func HittingTime(g *Graph, start, target int32, opts MCOptions) (Estimate, error) {
	return walk.EstimateHittingTime(g, start, target, opts)
}

// KernelCoverTime estimates the expected single-walk cover time from start
// under kernel k.
func KernelCoverTime(g *Graph, k Kernel, start int32, opts MCOptions) (Estimate, error) {
	return walk.EstimateKernelCoverTime(g, k, start, opts)
}

// KernelKCoverTime estimates the expected k-walk cover time (in rounds)
// from a common start vertex under kernel kern.
func KernelKCoverTime(g *Graph, kern Kernel, start int32, k int, opts MCOptions) (Estimate, error) {
	return walk.EstimateKernelKCoverTime(g, kern, start, k, opts)
}

// KernelHittingTime estimates h(start, target) under kernel k; compare
// against NewMarkovChainForKernel's absorbing-chain expectation for an
// exact cross-check.
func KernelHittingTime(g *Graph, k Kernel, start, target int32, opts MCOptions) (Estimate, error) {
	return walk.EstimateKernelHittingTime(g, k, start, target, opts)
}

// KMeetingTime estimates the expected first-meeting round of the k-walk
// from the given starts (any two walkers sharing a vertex after a round);
// see also MeetingTime in extras.go for the classic two-walker shape. On
// bipartite graphs walkers started on opposite sides never meet under
// simultaneous moves; such trials count as Truncated.
func KMeetingTime(g *Graph, starts []int32, opts MCOptions) (Estimate, error) {
	return walk.EstimateKMeetingTime(g, starts, opts)
}

// KCoalescenceTime estimates the expected full-coalescence round of the
// k-walk (walkers that have met merge into one class), together with the
// expected first-meeting round of the same runs.
func KCoalescenceTime(g *Graph, starts []int32, opts MCOptions) (coalesce, meet Estimate, err error) {
	return walk.EstimateKCoalescenceTime(g, starts, opts)
}

// PartialCoverRounds estimates, per cover fraction, the expected round the
// k-walk from start first reaches it — the whole partial-cover curve from
// single runs.
func PartialCoverRounds(g *Graph, start int32, k int, fractions []float64, opts MCOptions) ([]Estimate, error) {
	return walk.MeanPartialCoverRounds(g, start, k, fractions, opts)
}

// Corpus generation: bulk truncated walks from every vertex, streamed out
// in deterministic order through the grouped engine. GenerateCorpus is a
// method on Engine; these aliases expose its spec and decoder.

// CorpusSpec configures Engine.GenerateCorpus: walks per vertex, walk
// length, seed, output format, and workers.
type CorpusSpec = walk.CorpusSpec

// CorpusFormat selects the corpus encoding (CorpusText or CorpusBinary).
type CorpusFormat = walk.CorpusFormat

// Corpus output encodings.
const (
	CorpusText   = walk.CorpusText
	CorpusBinary = walk.CorpusBinary
)

// CorpusStats reports the walk and step totals of a generated corpus.
type CorpusStats = walk.CorpusStats

// CorpusHeader describes a corpus stream's shape.
type CorpusHeader = walk.CorpusHeader

// ScanCorpusBinary streams the walks of a binary corpus to fn.
func ScanCorpusBinary(r io.Reader, fn func(walk []int32) error) (CorpusHeader, error) {
	return walk.ScanCorpusBinary(r, fn)
}

// OpenGraph loads a graph file, sniffing the binary magic and falling back
// to the text edge-list reader; binary files are mmapped when possible.
func OpenGraph(path string) (*Graph, error) { return graph.Open(path) }

// ParseGraphSpec builds a deterministic graph from a compact
// "kind:params" spec string such as "hypercube:20" or "margulis:64".
func ParseGraphSpec(spec string) (*Graph, error) { return graph.ParseSpec(spec) }

// KernelTablePlan reports what compiling a kernel against a graph would
// build: whether it routes to the dense accounted row bank, the row/column
// counts, the byte footprint, and the memory cap applied.
type KernelTablePlan = walk.KernelTablePlan

// PlanKernelTable computes the compiled-table plan of kernel k on g — the
// capacity-planning view cmd/graphinfo surfaces. It fails exactly when
// NewEngine would refuse the kernel (e.g. a dense hopper bank over the
// memory cap).
func PlanKernelTable(g *Graph, k Kernel) (KernelTablePlan, error) {
	return walk.PlanKernelTable(g, k)
}

// PlanPadTable reports whether NewEngine would build the padded sampling
// table for g — the single-load uniform sampler — without building one.
func PlanPadTable(g *Graph) walk.PadTablePlan { return walk.PlanPadTable(g) }

// Serving API: the in-process query server behind cmd/walkd. A Server
// holds a graph registry and an LRU-bounded compiled-engine cache, and
// coalesces concurrent same-shape requests — walk queries, hitting/cover
// estimates, meeting times — into single grouped engine passes. Every
// served answer is bit-for-bit equal to the standalone sequential call for
// the same request; coalescing is pure batching.

// Server serves walk queries and estimator requests over registered
// graphs; construct with NewServer, register graphs with RegisterGraph,
// and stop with Close (which drains pending requests).
type Server = serve.Server

// ServerOptions tunes the serving layer (dispatch tick, batch and
// admission limits, engine-cache size); no option affects answers.
type ServerOptions = serve.Options

// ServerStats counts served traffic (requests, grouped passes, lanes).
type ServerStats = serve.Stats

// WalkQueryRequest is a k-token random-walk search request.
type WalkQueryRequest = serve.WalkQueryRequest

// HittingTimeRequest is a served hitting-time estimate request.
type HittingTimeRequest = serve.HittingTimeRequest

// CoverTimeRequest is a served k-walk cover-time estimate request.
type CoverTimeRequest = serve.CoverTimeRequest

// MeetingTimeRequest is a served k-walk meeting-time estimate request.
type MeetingTimeRequest = serve.MeetingTimeRequest

// NewServer returns a running query server; see cmd/walkd for the
// HTTP+JSON front end and cmd/walkload for the load generator that
// measures coalesced vs naive dispatch.
func NewServer(opts ServerOptions) *Server { return serve.NewServer(opts) }

// SpeedupPoint is one measured (k, S^k) with provenance and CI band.
type SpeedupPoint = core.SpeedupPoint

// Speedup measures S^k(G) = Ĉ(G)/Ĉ^k(G) from start.
func Speedup(g *Graph, start int32, k int, opts MCOptions) (SpeedupPoint, error) {
	return core.MeasureSpeedup(g, start, k, opts)
}

// SpeedupSweep measures S^k for each k, sharing one single-walk estimate.
func SpeedupSweep(g *Graph, start int32, ks []int, opts MCOptions) ([]SpeedupPoint, error) {
	return core.SpeedupCurve(g, start, ks, opts)
}

// KernelSpeedup measures S^k(G) with both the single walk and the k-walk
// running kernel kern, isolating the parallelism gain from the step law.
func KernelSpeedup(g *Graph, kern Kernel, start int32, k int, opts MCOptions) (SpeedupPoint, error) {
	return core.MeasureKernelSpeedup(g, kern, start, k, opts)
}

// KernelSpeedupSweep is SpeedupSweep under an arbitrary walk kernel.
func KernelSpeedupSweep(g *Graph, kern Kernel, start int32, ks []int, opts MCOptions) ([]SpeedupPoint, error) {
	return core.KernelSpeedupCurve(g, kern, start, ks, opts)
}

// Regime labels a speed-up curve's asymptotic shape.
type Regime = core.Regime

// Regime values.
const (
	RegimeUnknown     = core.RegimeUnknown
	RegimeLinear      = core.RegimeLinear
	RegimeLogarithmic = core.RegimeLogarithmic
	RegimeSuperlinear = core.RegimeSuperlinear
)

// Classification carries the regime decision and its fit evidence.
type Classification = core.Classification

// ClassifySpeedups fits a measured curve against the paper's regime
// templates (linear / logarithmic / superlinear).
func ClassifySpeedups(points []SpeedupPoint) (Classification, error) {
	return core.ClassifySpeedups(points)
}

// Exact analysis API.

// HittingTimes holds exact all-pairs expected hitting times.
type HittingTimes = exact.HittingTimes

// ComputeHittingTimes solves the fundamental matrix for all-pairs h(u,v);
// O(n³), intended for n into the low thousands.
func ComputeHittingTimes(g *Graph) (*HittingTimes, error) {
	return exact.ComputeHittingTimes(g)
}

// Bounds aggregates the exact quantities the paper's theorems use
// (hmax, hmin, Matthews bounds, spectral gap, mixing time).
type Bounds = core.Bounds

// ComputeBounds evaluates exact bounds for g; mixingBudget caps the t_m
// computation (0 skips it).
func ComputeBounds(g *Graph, mixingBudget int, r *Rand) (*Bounds, error) {
	return core.ComputeBounds(g, mixingBudget, r)
}

// ExactCoverTime returns the exact expected cover time from start for tiny
// graphs (n ≤ 18) via the subset DP — ground truth for the estimators.
func ExactCoverTime(g *Graph, start int32) (float64, error) {
	return exact.CoverTimeFrom(g, start)
}

// ExactKCoverTime returns the exact expected k-walk cover time from start
// for very small (n, k).
func ExactKCoverTime(g *Graph, start int32, k int) (float64, error) {
	return exact.KCoverTimeFrom(g, start, k)
}

// MixingTime computes the paper's t_m — smallest t with
// Σ_v |p^t(u,·) − π| < 1/e from the worst of the given starts — for the
// walk with the given laziness (stay probability). It returns -1 if the
// budget is exhausted first.
func MixingTime(g *Graph, stay float64, starts []int32, budget int) int {
	op := linalg.NewWalkOperator(g, stay)
	if starts == nil {
		starts = spectral.AllStarts(g.N())
	}
	res := spectral.MixingTime(op, starts, spectral.DefaultEpsilon, budget)
	if res.Truncated {
		return -1
	}
	return res.Time
}

// SpectralGap estimates the absolute spectral gap 1−λ of the walk on g
// (stay = laziness) by deflated power iteration.
func SpectralGap(g *Graph, stay float64, r *Rand) float64 {
	op := linalg.NewWalkOperator(g, stay)
	iters := 200
	for n := g.N(); n > 0; n >>= 1 {
		iters += 200
	}
	return linalg.SpectralGap(op, iters, r)
}
