module manywalks

go 1.22
